//! # aderdg-cli
//!
//! The `aderdg-run` command-line driver: resolves a scenario from the
//! [`ScenarioRegistry`], applies solver overrides (every
//! [`SolverSpec`](aderdg_core::SolverSpec) knob is reachable as a flag or
//! a `[solver]` config-file key), runs it and reports — no Rust required
//! to run a new setup.
//!
//! ```text
//! aderdg-run --list
//! aderdg-run --scenario loh1 --order 4 --kernel aosoa_splitck \
//!            --pipeline sharded --tuning model --out run.csv
//! aderdg-run --config run.toml
//! aderdg-run --smoke-all            # CI gate: every scenario, both pipelines
//! ```
//!
//! The library half exists so the parser and the run plumbing are unit
//! testable; `src/main.rs` is a thin wrapper around [`run_cli`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod toml;

use aderdg_core::checkpoint::Checkpoint;
use aderdg_core::engine::PipelineMode;
use aderdg_core::jobs::{JobQueue, JobStatus};
use aderdg_core::scenario::{RunRequest, RunSummary, ScenarioRegistry};
use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

pub use aderdg_core::report::{render_summary, write_receivers_csv, write_series_csv};

/// A user-facing CLI error (bad flag, bad value, failed run); never a
/// panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
}

impl CliError {
    fn new(message: impl fmt::Display) -> Self {
        Self {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "aderdg-run: {}", self.message)
    }
}

impl std::error::Error for CliError {}

/// The usage text (`--help`).
pub const USAGE: &str = "\
aderdg-run — scenario driver for the aderdg engine

USAGE:
  aderdg-run --list                      table of registered scenarios
  aderdg-run --list-names                scenario names only, one per line
  aderdg-run --scenario <name> [OPTIONS] run one scenario
  aderdg-run --config <file> [OPTIONS]   run from a TOML config ([run] + [solver]
                                         tables); flags override file values
  aderdg-run --smoke-all [--docs <file>] smoke-run every scenario on both
                                         pipelines and check the gallery doc
                                         (default docs/SCENARIOS.md)
  aderdg-run --help

SOLVER OPTIONS (defaults come from the scenario):
  --order <2..=15>          scheme order
  --kernel <key>            STP kernel registry key (see README)
  --cfl <0..0.45]           CFL safety factor
  --width <sse|avx2|avx512|host>
  --rule <gauss_legendre|gauss_lobatto>
  --block-size <n|auto>     predictor block size
  --tuning <static|model|probe>
  --pipeline <barrier|sharded>
  --stepping <global|lts>   global CFL dt, or clustered local time stepping
  --shard-size <n|auto>     cells per shard (sharded pipeline)

RUN OPTIONS:
  --cells <n>               cells per axis (uniform override)
  --t-end <t>               simulated end time
  --smoke                   tiny grid, 2 steps (CI smoke mode)
  --out <file>              write the checkpoint time series as CSV
  --snapshot <file>         write the final nodal state as CSV
  --receivers <file>        write receiver seismograms as CSV
  --save-checkpoint <file>  save a resumable engine checkpoint when the run
                            completes (or pauses)
  --resume <file>           resume from a saved checkpoint; solver knobs
                            default to the saved ones, flags still override

BATCH OPTIONS:
  --sweep <key=v1,v2,…>     run every combination of the swept keys through
                            the job queue (repeatable to cross keys;
                            `kernel=*` expands to every registered kernel)
  --jobs <n>                concurrent sweep jobs (default min(combos, 4))
";

/// A fully parsed run invocation.
#[derive(Debug, Clone, Default)]
pub struct RunArgs {
    /// Scenario registry key.
    pub scenario: String,
    /// Merged overrides handed to [`aderdg_core::scenario::Scenario::run`].
    pub request: RunRequest,
    /// Time-series CSV destination.
    pub out: Option<PathBuf>,
    /// Receiver-seismogram CSV destination.
    pub receivers: Option<PathBuf>,
    /// Checkpoint to resume from (`--resume`); the saved knobs become the
    /// request baseline and explicit flags override them.
    pub resume: Option<PathBuf>,
    /// `--sweep key=v1,v2,…` axes, crossed into a batch of runs.
    pub sweep: Vec<(String, Vec<String>)>,
    /// `--jobs`: concurrent sweep jobs.
    pub jobs: Option<usize>,
}

/// What the command line asked for.
#[derive(Debug, Clone)]
pub enum Command {
    /// `--help`.
    Help,
    /// `--list`: the scenario table.
    List,
    /// `--list-names`: machine-readable scenario names.
    ListNames,
    /// Run one scenario.
    Run(Box<RunArgs>),
    /// `--smoke-all`: every scenario × both pipelines + docs gate.
    SmokeAll {
        /// Gallery document to check (default `docs/SCENARIOS.md`).
        docs: PathBuf,
    },
}

/// Applies one solver/run key by delegating to [`RunRequest::set`] — the
/// single parser shared with config-file entries, `aderdg-serve` commands
/// and checkpoint replay (`what` names the source for error messages).
fn apply_key(req: &mut RunRequest, key: &str, value: &str, what: &str) -> Result<bool, CliError> {
    req.set(key, value).map_err(|e| {
        CliError::new(format!(
            "invalid value `{value}` for {what} (expected {})",
            e.expected
        ))
    })
}

/// Keys [`RunRequest::set`] accepts that belong to the `[run]` table /
/// run-level flags, not `[solver]`.
const RUN_LEVEL_KEYS: &[&str] = &["cells", "t_end", "smoke", "snapshot", "save_checkpoint"];

/// Builds a [`RunArgs`] from a parsed config document. Recognized tables:
/// `[run]` (scenario, cells, t_end, smoke, out, snapshot, receivers) and
/// `[solver]` (every [`aderdg_core::SolverSpec`] key).
pub fn args_from_config(doc: &toml::Doc) -> Result<RunArgs, CliError> {
    let mut args = RunArgs::default();
    for table in &doc.tables {
        match table.name.as_str() {
            "run" => {
                for e in &table.entries {
                    let what = format!("[run] {} (line {})", e.key, e.line);
                    match e.key.as_str() {
                        "scenario" => args.scenario = e.value.clone(),
                        "out" => args.out = Some(PathBuf::from(&e.value)),
                        "receivers" => args.receivers = Some(PathBuf::from(&e.value)),
                        key if RUN_LEVEL_KEYS.contains(&key) => {
                            apply_key(&mut args.request, key, &e.value, &what)?;
                        }
                        other => {
                            return Err(CliError::new(format!(
                                "unknown [run] key `{other}` (line {})",
                                e.line
                            )))
                        }
                    }
                }
            }
            "solver" => {
                for e in &table.entries {
                    let what = format!("[solver] {} (line {})", e.key, e.line);
                    if RUN_LEVEL_KEYS.contains(&e.key.as_str())
                        || !apply_key(&mut args.request, &e.key, &e.value, &what)?
                    {
                        return Err(CliError::new(format!(
                            "unknown [solver] key `{}` (line {})",
                            e.key, e.line
                        )));
                    }
                }
            }
            "" => {
                let key = &table.entries[0];
                return Err(CliError::new(format!(
                    "key `{}` outside any table (line {}) — use [run] or [solver]",
                    key.key, key.line
                )));
            }
            other => {
                return Err(CliError::new(format!(
                    "unknown table `[{other}]` (line {}) — use [run] or [solver]",
                    table.line
                )))
            }
        }
    }
    Ok(args)
}

/// Parses a command line (without the program name). Pure and total: any
/// mistake comes back as a [`CliError`], never a panic.
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    if args.is_empty() {
        return Err(CliError::new(
            "no arguments; try `aderdg-run --list` or `aderdg-run --help`",
        ));
    }
    let mut scenario: Option<String> = None;
    let mut config: Option<PathBuf> = None;
    let mut docs: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut receivers: Option<PathBuf> = None;
    let mut resume: Option<PathBuf> = None;
    let mut sweep: Vec<(String, Vec<String>)> = Vec::new();
    let mut jobs: Option<usize> = None;
    let mut req = RunRequest::default();
    let mut mode: Option<&'static str> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| -> Result<String, CliError> {
            it.next()
                .cloned()
                .ok_or_else(|| CliError::new(format!("{flag} requires a value")))
        };
        match arg.as_str() {
            "--help" | "-h" => return Ok(Command::Help),
            "--list" => mode = Some("list"),
            "--list-names" => mode = Some("list-names"),
            "--smoke-all" => mode = Some("smoke-all"),
            "--smoke" => req.smoke = true,
            "--scenario" => scenario = Some(value_of("--scenario")?),
            "--config" => config = Some(PathBuf::from(value_of("--config")?)),
            "--docs" => docs = Some(PathBuf::from(value_of("--docs")?)),
            "--out" => out = Some(PathBuf::from(value_of("--out")?)),
            "--snapshot" => req.snapshot = Some(PathBuf::from(value_of("--snapshot")?)),
            "--receivers" => receivers = Some(PathBuf::from(value_of("--receivers")?)),
            "--resume" => resume = Some(PathBuf::from(value_of("--resume")?)),
            "--sweep" => sweep.push(parse_sweep_axis(&value_of("--sweep")?)?),
            "--jobs" => {
                let value = value_of("--jobs")?;
                jobs = Some(match value.parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => {
                        return Err(CliError::new(format!(
                            "invalid value `{value}` for --jobs (expected a positive integer)"
                        )))
                    }
                });
            }
            flag if flag.starts_with("--") => {
                let key = flag.trim_start_matches("--").replace('-', "_");
                let value = value_of(flag)?;
                if !apply_key(&mut req, &key, &value, flag)? {
                    return Err(CliError::new(format!(
                        "unknown flag `{flag}` (see `aderdg-run --help`)"
                    )));
                }
            }
            other => {
                return Err(CliError::new(format!(
                    "unexpected argument `{other}` (see `aderdg-run --help`)"
                )))
            }
        }
    }

    match mode {
        Some("list") => return Ok(Command::List),
        Some("list-names") => return Ok(Command::ListNames),
        Some("smoke-all") => {
            return Ok(Command::SmokeAll {
                docs: docs.unwrap_or_else(|| PathBuf::from("docs/SCENARIOS.md")),
            })
        }
        _ => {}
    }

    // A run: from a config file, a --scenario flag, or both (flags win).
    let mut run = match &config {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::new(format!("cannot read {}: {e}", path.display())))?;
            let doc = toml::parse(&text)
                .map_err(|e| CliError::new(format!("{}: {e}", path.display())))?;
            args_from_config(&doc)?
        }
        None => RunArgs::default(),
    };
    if let Some(name) = scenario {
        run.scenario = name;
    }
    if run.scenario.is_empty() && resume.is_none() {
        return Err(CliError::new(
            "missing scenario: pass `--scenario <name>`, `--resume <checkpoint>` or a config \
             file with `scenario = …` under [run] (`aderdg-run --list` shows what is registered)",
        ));
    }
    // Flag overrides on top of the config file.
    merge_requests(&mut run.request, req);
    if out.is_some() {
        run.out = out;
    }
    if receivers.is_some() {
        run.receivers = receivers;
    }
    run.resume = resume;
    run.sweep = sweep;
    run.jobs = jobs;
    if run.jobs.is_some() && run.sweep.is_empty() {
        return Err(CliError::new("--jobs only applies to --sweep batch runs"));
    }
    if !run.sweep.is_empty() {
        let conflict = [
            ("--out", run.out.is_some()),
            ("--receivers", run.receivers.is_some()),
            ("--snapshot", run.request.snapshot.is_some()),
            ("--save-checkpoint", run.request.save_checkpoint.is_some()),
            ("--resume", run.resume.is_some()),
        ]
        .iter()
        .find_map(|(flag, set)| set.then_some(*flag));
        if let Some(flag) = conflict {
            return Err(CliError::new(format!(
                "{flag} cannot be combined with --sweep (per-run outputs are ambiguous \
                 across a batch)"
            )));
        }
    }
    Ok(Command::Run(Box::new(run)))
}

/// Parses one `--sweep key=v1,v2,…` axis.
fn parse_sweep_axis(spec: &str) -> Result<(String, Vec<String>), CliError> {
    let bad = || {
        CliError::new(format!(
            "invalid --sweep `{spec}` (expected key=value1,value2,…)"
        ))
    };
    let (key, values) = spec.split_once('=').ok_or_else(bad)?;
    let key = key.trim().replace('-', "_");
    let values: Vec<String> = values
        .split(',')
        .map(str::trim)
        .filter(|v| !v.is_empty())
        .map(String::from)
        .collect();
    if key.is_empty() || values.is_empty() {
        return Err(bad());
    }
    Ok((key, values))
}

/// Overlays `over` (flag values) onto `base` (config-file values).
fn merge_requests(base: &mut RunRequest, over: RunRequest) {
    macro_rules! take {
        ($($field:ident),*) => {
            $(if over.$field.is_some() { base.$field = over.$field; })*
        };
    }
    take!(
        order,
        kernel,
        cfl,
        width,
        rule,
        block_size,
        tuning,
        pipeline,
        stepping,
        shard_size,
        cells,
        t_end,
        snapshot,
        save_checkpoint
    );
    base.smoke |= over.smoke;
}

/// Renders the `--list` table.
pub fn render_list() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<20} {:<9} {:>5} {:>10} {:>7} {:<14} {:<5}  {}\n",
        "scenario", "system", "order", "cells", "t_end", "kernel", "exact", "description"
    ));
    for scenario in ScenarioRegistry::global().scenarios() {
        let i = scenario.info();
        out.push_str(&format!(
            "{:<20} {:<9} {:>5} {:>10} {:>7} {:<14} {:<5}  {}\n",
            i.name,
            i.system,
            i.order,
            format!("{}x{}x{}", i.cells[0], i.cells[1], i.cells[2]),
            i.t_end,
            i.kernel,
            if i.has_exact { "yes" } else { "no" },
            i.title
        ));
    }
    out
}

/// Runs one scenario invocation (or checkpoint resume) and writes its
/// outputs.
pub fn execute_run(args: &RunArgs) -> Result<RunSummary, CliError> {
    let (name, request) = match &args.resume {
        Some(path) => {
            let ck = Checkpoint::load(path).map_err(CliError::new)?;
            if !args.scenario.is_empty() && args.scenario != ck.scenario {
                return Err(CliError::new(format!(
                    "checkpoint {} is for scenario `{}`, not `{}`",
                    path.display(),
                    ck.scenario,
                    args.scenario
                )));
            }
            // Saved knobs are the baseline; explicit flags override them.
            let mut request = ck.to_request().map_err(CliError::new)?;
            merge_requests(&mut request, args.request.clone());
            let name = ck.scenario.clone();
            request.resume = Some(Arc::new(ck));
            (name, request)
        }
        None => (args.scenario.clone(), args.request.clone()),
    };
    let scenario = ScenarioRegistry::global().resolve(&name).ok_or_else(|| {
        CliError::new(format!(
            "unknown scenario `{name}` (registered: {})",
            ScenarioRegistry::global().names().join(", ")
        ))
    })?;
    let summary = scenario.run(&request).map_err(CliError::new)?;
    if let Some(path) = &args.out {
        write_file(path, |f| write_series_csv(&summary, f))?;
    }
    if let Some(path) = &args.receivers {
        write_file(path, |f| write_receivers_csv(&summary, f))?;
    }
    Ok(summary)
}

/// Writes a CLI output file atomically (`<path>.tmp` + rename), so an
/// interrupted run never leaves a half-written CSV behind.
fn write_file(
    path: &Path,
    f: impl FnOnce(&mut dyn Write) -> std::io::Result<()>,
) -> Result<(), CliError> {
    aderdg_core::output::write_atomic(path, f)
        .map_err(|e| CliError::new(format!("cannot write {}: {e}", path.display())))
}

/// Expands the `--sweep` axes into the cross-product of concrete
/// requests, each labelled `key=value key=value …`. `kernel=*` expands
/// to every registered kernel.
pub fn expand_sweep(
    base: &RunRequest,
    sweep: &[(String, Vec<String>)],
) -> Result<Vec<(String, RunRequest)>, CliError> {
    let mut combos = vec![(String::new(), base.clone())];
    for (key, values) in sweep {
        let values: Vec<String> = if key == "kernel" && values == &["*".to_string()] {
            aderdg_core::KernelRegistry::global()
                .names()
                .iter()
                .map(|s| s.to_string())
                .collect()
        } else {
            values.clone()
        };
        let mut next = Vec::with_capacity(combos.len() * values.len());
        for (label, request) in &combos {
            for value in &values {
                let mut request = request.clone();
                if !apply_key(&mut request, key, value, &format!("--sweep {key}"))? {
                    return Err(CliError::new(format!(
                        "unknown --sweep key `{key}` (see `aderdg-run --help` for solver keys)"
                    )));
                }
                let mut label = label.clone();
                if !label.is_empty() {
                    label.push(' ');
                }
                label.push_str(&format!("{key}={value}"));
                next.push((label, request));
            }
        }
        combos = next;
    }
    Ok(combos)
}

/// The `--sweep` batch mode: every combination goes through a
/// [`JobQueue`] (all engines share the one process-wide worker pool) and
/// the outcome table is printed as jobs finish. Any failed combination
/// fails the whole sweep.
pub fn run_sweep(args: &RunArgs, log: &mut dyn Write) -> Result<(), CliError> {
    let combos = expand_sweep(&args.request, &args.sweep)?;
    let runners = args.jobs.unwrap_or_else(|| combos.len().min(4));
    let queue = JobQueue::new(runners);
    let mut jobs = Vec::with_capacity(combos.len());
    for (label, request) in combos {
        let job = queue
            .submit(&args.scenario, request)
            .map_err(CliError::new)?;
        jobs.push((label, job));
    }
    let _ = writeln!(
        log,
        "sweep: {} combination(s) of `{}` over {runners} concurrent job(s)",
        jobs.len(),
        args.scenario
    );
    let mut failed = 0;
    for (label, job) in &jobs {
        match job.wait() {
            JobStatus::Done => {
                let Some(s) = job.summary() else {
                    return Err(CliError::new(format!(
                        "job `{label}` reported done without a summary"
                    )));
                };
                let _ = writeln!(
                    log,
                    "  ok   {label:<44} {} steps, t = {:.6}, L2 norm {:.6e}",
                    s.steps, s.t_end, s.l2_norm
                );
            }
            status => {
                failed += 1;
                let _ = writeln!(
                    log,
                    "  FAIL {label:<44} {}: {}",
                    status.as_str(),
                    job.error().unwrap_or_else(|| "no details".into())
                );
            }
        }
    }
    if failed > 0 {
        return Err(CliError::new(format!(
            "{failed} of {} sweep combination(s) failed",
            jobs.len()
        )));
    }
    Ok(())
}

/// Checks that every registered scenario has a gallery section (a `##`
/// heading naming it in backticks) and a reproduction command
/// (`--scenario <name>`) in the docs file. Returns the missing names.
pub fn missing_gallery_sections(docs_text: &str) -> Vec<&'static str> {
    let mut missing = Vec::new();
    for name in ScenarioRegistry::global().names() {
        let heading = docs_text
            .lines()
            .any(|l| l.starts_with("## ") && l.contains(&format!("`{name}`")));
        let command = docs_text.contains(&format!("--scenario {name}"));
        if !(heading && command) {
            missing.push(name);
        }
    }
    missing
}

/// The `--smoke-all` gate: every registered scenario runs in smoke mode
/// on **both** pipelines, and every one has a `docs/SCENARIOS.md`
/// section — a new scenario cannot land unrunnable or undocumented.
pub fn smoke_all(docs: &Path, log: &mut dyn Write) -> Result<(), CliError> {
    for scenario in ScenarioRegistry::global().scenarios() {
        let info = scenario.info();
        for pipeline in [PipelineMode::Sharded, PipelineMode::Barrier] {
            let req = RunRequest {
                pipeline: Some(pipeline),
                ..RunRequest::smoke()
            };
            let summary = scenario.run(&req).map_err(|e| {
                CliError::new(format!("scenario `{}` ({pipeline:?}): {e}", info.name))
            })?;
            if !summary.l2_norm.is_finite() {
                return Err(CliError::new(format!(
                    "scenario `{}` ({pipeline:?}): non-finite L2 norm after {} steps",
                    info.name, summary.steps
                )));
            }
            let _ = writeln!(
                log,
                "smoke {:<20} {pipeline:?}: {} steps, L2 norm {:.3e} — ok",
                info.name, summary.steps, summary.l2_norm
            );
        }
    }
    let text = std::fs::read_to_string(docs).map_err(|e| {
        CliError::new(format!(
            "cannot read the scenario gallery {}: {e}",
            docs.display()
        ))
    })?;
    let missing = missing_gallery_sections(&text);
    if !missing.is_empty() {
        return Err(CliError::new(format!(
            "scenario(s) missing from the gallery {} (need a `## …` heading and an \
             `aderdg-run --scenario <name>` command): {}",
            docs.display(),
            missing.join(", ")
        )));
    }
    let _ = writeln!(
        log,
        "gallery {} covers all registered scenarios",
        docs.display()
    );
    Ok(())
}

/// The whole CLI: parse, dispatch, print to `stdout`/`log`.
pub fn run_cli(args: &[String], stdout: &mut dyn Write) -> Result<(), CliError> {
    match parse_args(args)? {
        Command::Help => {
            let _ = write!(stdout, "{USAGE}");
            Ok(())
        }
        Command::List => {
            let _ = write!(stdout, "{}", render_list());
            Ok(())
        }
        Command::ListNames => {
            for name in ScenarioRegistry::global().names() {
                let _ = writeln!(stdout, "{name}");
            }
            Ok(())
        }
        Command::Run(run) if !run.sweep.is_empty() => run_sweep(&run, stdout),
        Command::Run(run) => {
            let summary = execute_run(&run)?;
            let _ = write!(stdout, "{}", render_summary(&summary));
            Ok(())
        }
        Command::SmokeAll { docs } => smoke_all(&docs, stdout),
    }
}
