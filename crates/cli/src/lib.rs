//! # aderdg-cli
//!
//! The `aderdg-run` command-line driver: resolves a scenario from the
//! [`ScenarioRegistry`], applies solver overrides (every
//! [`SolverSpec`](aderdg_core::SolverSpec) knob is reachable as a flag or
//! a `[solver]` config-file key), runs it and reports — no Rust required
//! to run a new setup.
//!
//! ```text
//! aderdg-run --list
//! aderdg-run --scenario loh1 --order 4 --kernel aosoa_splitck \
//!            --pipeline sharded --tuning model --out run.csv
//! aderdg-run --config run.toml
//! aderdg-run --smoke-all            # CI gate: every scenario, both pipelines
//! ```
//!
//! The library half exists so the parser and the run plumbing are unit
//! testable; `src/main.rs` is a thin wrapper around [`run_cli`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod toml;

use aderdg_core::engine::PipelineMode;
use aderdg_core::scenario::{RunRequest, RunSummary, ScenarioRegistry};
use aderdg_core::spec::{parse_auto_size, parse_rule, parse_width};
use aderdg_core::tune::TuningMode;
use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};

/// A user-facing CLI error (bad flag, bad value, failed run); never a
/// panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
}

impl CliError {
    fn new(message: impl fmt::Display) -> Self {
        Self {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "aderdg-run: {}", self.message)
    }
}

impl std::error::Error for CliError {}

/// The usage text (`--help`).
pub const USAGE: &str = "\
aderdg-run — scenario driver for the aderdg engine

USAGE:
  aderdg-run --list                      table of registered scenarios
  aderdg-run --list-names                scenario names only, one per line
  aderdg-run --scenario <name> [OPTIONS] run one scenario
  aderdg-run --config <file> [OPTIONS]   run from a TOML config ([run] + [solver]
                                         tables); flags override file values
  aderdg-run --smoke-all [--docs <file>] smoke-run every scenario on both
                                         pipelines and check the gallery doc
                                         (default docs/SCENARIOS.md)
  aderdg-run --help

SOLVER OPTIONS (defaults come from the scenario):
  --order <2..=15>          scheme order
  --kernel <key>            STP kernel registry key (see README)
  --cfl <0..0.45]           CFL safety factor
  --width <sse|avx2|avx512|host>
  --rule <gauss_legendre|gauss_lobatto>
  --block-size <n|auto>     predictor block size
  --tuning <static|model|probe>
  --pipeline <barrier|sharded>
  --shard-size <n|auto>     cells per shard (sharded pipeline)

RUN OPTIONS:
  --cells <n>               cells per axis (uniform override)
  --t-end <t>               simulated end time
  --smoke                   tiny grid, 2 steps (CI smoke mode)
  --out <file>              write the checkpoint time series as CSV
  --snapshot <file>         write the final nodal state as CSV
  --receivers <file>        write receiver seismograms as CSV
";

/// A fully parsed run invocation.
#[derive(Debug, Clone, Default)]
pub struct RunArgs {
    /// Scenario registry key.
    pub scenario: String,
    /// Merged overrides handed to [`aderdg_core::scenario::Scenario::run`].
    pub request: RunRequest,
    /// Time-series CSV destination.
    pub out: Option<PathBuf>,
    /// Receiver-seismogram CSV destination.
    pub receivers: Option<PathBuf>,
}

/// What the command line asked for.
#[derive(Debug, Clone)]
pub enum Command {
    /// `--help`.
    Help,
    /// `--list`: the scenario table.
    List,
    /// `--list-names`: machine-readable scenario names.
    ListNames,
    /// Run one scenario.
    Run(Box<RunArgs>),
    /// `--smoke-all`: every scenario × both pipelines + docs gate.
    SmokeAll {
        /// Gallery document to check (default `docs/SCENARIOS.md`).
        docs: PathBuf,
    },
}

fn parse_flag_value<T: std::str::FromStr>(
    flag: &str,
    value: &str,
    expected: &str,
) -> Result<T, CliError> {
    value.parse().map_err(|_| {
        CliError::new(format!(
            "invalid value `{value}` for {flag} (expected {expected})"
        ))
    })
}

/// Applies one solver/run key (shared between CLI flags and config-file
/// entries; `what` names the source for error messages).
fn apply_key(req: &mut RunRequest, key: &str, value: &str, what: &str) -> Result<bool, CliError> {
    let invalid = |expected: &str| {
        CliError::new(format!(
            "invalid value `{value}` for {what} (expected {expected})"
        ))
    };
    match key {
        "order" => req.order = Some(parse_flag_value(what, value, "an integer 2..=15")?),
        "kernel" => req.kernel = Some(value.to_string()),
        "cfl" => req.cfl = Some(parse_flag_value(what, value, "a number in (0, 0.45]")?),
        "width" => {
            req.width = Some(parse_width(value).ok_or_else(|| invalid("sse|avx2|avx512|host"))?)
        }
        "rule" => {
            req.rule =
                Some(parse_rule(value).ok_or_else(|| invalid("gauss_legendre|gauss_lobatto"))?)
        }
        "block_size" => {
            req.block_size =
                Some(parse_auto_size(value).ok_or_else(|| invalid("auto or an integer >= 1"))?)
        }
        "tuning" => {
            req.tuning =
                Some(TuningMode::parse(value).ok_or_else(|| invalid("static|model|probe"))?)
        }
        "pipeline" => {
            req.pipeline =
                Some(PipelineMode::parse(value).ok_or_else(|| invalid("barrier|sharded"))?)
        }
        "shard_size" => {
            req.shard_size =
                Some(parse_auto_size(value).ok_or_else(|| invalid("auto or an integer >= 1"))?)
        }
        "cells" => req.cells = Some(parse_flag_value(what, value, "an integer >= 1")?),
        "t_end" => req.t_end = Some(parse_flag_value(what, value, "a positive number")?),
        _ => return Ok(false),
    }
    Ok(true)
}

/// Builds a [`RunArgs`] from a parsed config document. Recognized tables:
/// `[run]` (scenario, cells, t_end, smoke, out, snapshot, receivers) and
/// `[solver]` (every [`aderdg_core::SolverSpec`] key).
pub fn args_from_config(doc: &toml::Doc) -> Result<RunArgs, CliError> {
    let mut args = RunArgs::default();
    for table in &doc.tables {
        match table.name.as_str() {
            "run" => {
                for e in &table.entries {
                    let what = format!("[run] {} (line {})", e.key, e.line);
                    match e.key.as_str() {
                        "scenario" => args.scenario = e.value.clone(),
                        "smoke" => {
                            args.request.smoke = match e.value.as_str() {
                                "true" => true,
                                "false" => false,
                                _ => {
                                    return Err(CliError::new(format!(
                                        "invalid value `{}` for {what} (expected true|false)",
                                        e.value
                                    )))
                                }
                            }
                        }
                        "out" => args.out = Some(PathBuf::from(&e.value)),
                        "snapshot" => args.request.snapshot = Some(PathBuf::from(&e.value)),
                        "receivers" => args.receivers = Some(PathBuf::from(&e.value)),
                        "cells" | "t_end" => {
                            apply_key(&mut args.request, &e.key, &e.value, &what)?;
                        }
                        other => {
                            return Err(CliError::new(format!(
                                "unknown [run] key `{other}` (line {})",
                                e.line
                            )))
                        }
                    }
                }
            }
            "solver" => {
                for e in &table.entries {
                    let what = format!("[solver] {} (line {})", e.key, e.line);
                    if !apply_key(&mut args.request, &e.key, &e.value, &what)?
                        || e.key == "cells"
                        || e.key == "t_end"
                    {
                        return Err(CliError::new(format!(
                            "unknown [solver] key `{}` (line {})",
                            e.key, e.line
                        )));
                    }
                }
            }
            "" => {
                let key = &table.entries[0];
                return Err(CliError::new(format!(
                    "key `{}` outside any table (line {}) — use [run] or [solver]",
                    key.key, key.line
                )));
            }
            other => {
                return Err(CliError::new(format!(
                    "unknown table `[{other}]` (line {}) — use [run] or [solver]",
                    table.line
                )))
            }
        }
    }
    Ok(args)
}

/// Parses a command line (without the program name). Pure and total: any
/// mistake comes back as a [`CliError`], never a panic.
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    if args.is_empty() {
        return Err(CliError::new(
            "no arguments; try `aderdg-run --list` or `aderdg-run --help`",
        ));
    }
    let mut scenario: Option<String> = None;
    let mut config: Option<PathBuf> = None;
    let mut docs: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut receivers: Option<PathBuf> = None;
    let mut req = RunRequest::default();
    let mut mode: Option<&'static str> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| -> Result<String, CliError> {
            it.next()
                .cloned()
                .ok_or_else(|| CliError::new(format!("{flag} requires a value")))
        };
        match arg.as_str() {
            "--help" | "-h" => return Ok(Command::Help),
            "--list" => mode = Some("list"),
            "--list-names" => mode = Some("list-names"),
            "--smoke-all" => mode = Some("smoke-all"),
            "--smoke" => req.smoke = true,
            "--scenario" => scenario = Some(value_of("--scenario")?),
            "--config" => config = Some(PathBuf::from(value_of("--config")?)),
            "--docs" => docs = Some(PathBuf::from(value_of("--docs")?)),
            "--out" => out = Some(PathBuf::from(value_of("--out")?)),
            "--snapshot" => req.snapshot = Some(PathBuf::from(value_of("--snapshot")?)),
            "--receivers" => receivers = Some(PathBuf::from(value_of("--receivers")?)),
            flag if flag.starts_with("--") => {
                let key = flag.trim_start_matches("--").replace('-', "_");
                let value = value_of(flag)?;
                if !apply_key(&mut req, &key, &value, flag)? {
                    return Err(CliError::new(format!(
                        "unknown flag `{flag}` (see `aderdg-run --help`)"
                    )));
                }
            }
            other => {
                return Err(CliError::new(format!(
                    "unexpected argument `{other}` (see `aderdg-run --help`)"
                )))
            }
        }
    }

    match mode {
        Some("list") => return Ok(Command::List),
        Some("list-names") => return Ok(Command::ListNames),
        Some("smoke-all") => {
            return Ok(Command::SmokeAll {
                docs: docs.unwrap_or_else(|| PathBuf::from("docs/SCENARIOS.md")),
            })
        }
        _ => {}
    }

    // A run: from a config file, a --scenario flag, or both (flags win).
    let mut run = match &config {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::new(format!("cannot read {}: {e}", path.display())))?;
            let doc = toml::parse(&text)
                .map_err(|e| CliError::new(format!("{}: {e}", path.display())))?;
            args_from_config(&doc)?
        }
        None => RunArgs::default(),
    };
    if let Some(name) = scenario {
        run.scenario = name;
    }
    if run.scenario.is_empty() {
        return Err(CliError::new(
            "missing scenario: pass `--scenario <name>` or a config file with `scenario = …` \
             under [run] (`aderdg-run --list` shows what is registered)",
        ));
    }
    // Flag overrides on top of the config file.
    merge_requests(&mut run.request, req);
    if out.is_some() {
        run.out = out;
    }
    if receivers.is_some() {
        run.receivers = receivers;
    }
    Ok(Command::Run(Box::new(run)))
}

/// Overlays `over` (flag values) onto `base` (config-file values).
fn merge_requests(base: &mut RunRequest, over: RunRequest) {
    macro_rules! take {
        ($($field:ident),*) => {
            $(if over.$field.is_some() { base.$field = over.$field; })*
        };
    }
    take!(
        order, kernel, cfl, width, rule, block_size, tuning, pipeline, shard_size, cells, t_end,
        snapshot
    );
    base.smoke |= over.smoke;
}

/// Renders the `--list` table.
pub fn render_list() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<20} {:<9} {:>5} {:>10} {:>7} {:<14} {:<5}  {}\n",
        "scenario", "system", "order", "cells", "t_end", "kernel", "exact", "description"
    ));
    for scenario in ScenarioRegistry::global().scenarios() {
        let i = scenario.info();
        out.push_str(&format!(
            "{:<20} {:<9} {:>5} {:>10} {:>7} {:<14} {:<5}  {}\n",
            i.name,
            i.system,
            i.order,
            format!("{}x{}x{}", i.cells[0], i.cells[1], i.cells[2]),
            i.t_end,
            i.kernel,
            if i.has_exact { "yes" } else { "no" },
            i.title
        ));
    }
    out
}

/// Renders the human-readable run report.
pub fn render_summary(s: &RunSummary) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "scenario {} [{}]: order {}, {}x{}x{} cells ({}), kernel {}, pipeline {:?}\n",
        s.scenario,
        s.system,
        s.order,
        s.cells[0],
        s.cells[1],
        s.cells[2],
        s.num_cells,
        s.kernel,
        s.pipeline,
    ));
    out.push_str(&format!("tune: {}\n", s.tune));
    out.push_str(&format!(
        "{} steps to t = {:.6} in {:.3} s ({:.0} cell updates/s)\n",
        s.steps, s.t_end, s.wall_seconds, s.cell_updates_per_second
    ));
    out.push_str(&format!(
        "{:>10} {:>8} {:>13} {:>13}\n",
        "t", "steps", "L2 norm", "L2 error"
    ));
    for p in &s.series {
        let err = p
            .l2_error
            .map(|e| format!("{e:>13.4e}"))
            .unwrap_or_else(|| format!("{:>13}", "-"));
        out.push_str(&format!(
            "{:>10.4} {:>8} {:>13.6e} {err}\n",
            p.t, p.steps, p.l2_norm
        ));
    }
    let drift: f64 = s
        .integrals_initial
        .iter()
        .zip(&s.integrals_final)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    out.push_str(&format!(
        "conserved-quantity drift: max |Δ∫q| = {drift:.3e} over {} quantities\n",
        s.integrals_final.len()
    ));
    if let Some(err) = s.l2_error {
        out.push_str(&format!("final L2 error vs exact solution: {err:.6e}\n"));
    }
    if !s.receivers.is_empty() {
        out.push_str(&format!(
            "{} receiver(s) recorded {} samples each\n",
            s.receivers.len(),
            s.receivers.first().map_or(0, |r| r.records.len())
        ));
    }
    out
}

/// Writes the checkpoint time series as CSV (`t,steps,l2_norm,l2_error`).
pub fn write_series_csv(s: &RunSummary, out: &mut dyn Write) -> std::io::Result<()> {
    writeln!(out, "t,steps,l2_norm,l2_error")?;
    for p in &s.series {
        match p.l2_error {
            Some(e) => writeln!(out, "{},{},{},{e}", p.t, p.steps, p.l2_norm)?,
            None => writeln!(out, "{},{},{},", p.t, p.steps, p.l2_norm)?,
        }
    }
    Ok(())
}

/// Writes every receiver's seismogram as CSV
/// (`receiver,x,y,z,t,q0,q1,…`).
pub fn write_receivers_csv(s: &RunSummary, out: &mut dyn Write) -> std::io::Result<()> {
    let vars = s
        .receivers
        .iter()
        .flat_map(|r| r.records.first())
        .map(|(_, v)| v.len())
        .next()
        .unwrap_or(0);
    write!(out, "receiver,x,y,z,t")?;
    for v in 0..vars {
        write!(out, ",q{v}")?;
    }
    writeln!(out)?;
    for (i, r) in s.receivers.iter().enumerate() {
        for (t, v) in &r.records {
            write!(
                out,
                "{i},{},{},{},{t}",
                r.position[0], r.position[1], r.position[2]
            )?;
            for x in v {
                write!(out, ",{x}")?;
            }
            writeln!(out)?;
        }
    }
    Ok(())
}

/// Runs one scenario invocation and writes its outputs.
pub fn execute_run(args: &RunArgs) -> Result<RunSummary, CliError> {
    let scenario = ScenarioRegistry::global()
        .resolve(&args.scenario)
        .ok_or_else(|| {
            CliError::new(format!(
                "unknown scenario `{}` (registered: {})",
                args.scenario,
                ScenarioRegistry::global().names().join(", ")
            ))
        })?;
    let summary = scenario.run(&args.request).map_err(CliError::new)?;
    if let Some(path) = &args.out {
        write_file(path, |f| write_series_csv(&summary, f))?;
    }
    if let Some(path) = &args.receivers {
        write_file(path, |f| write_receivers_csv(&summary, f))?;
    }
    Ok(summary)
}

fn write_file(
    path: &Path,
    f: impl FnOnce(&mut dyn Write) -> std::io::Result<()>,
) -> Result<(), CliError> {
    let mut file = std::fs::File::create(path)
        .map_err(|e| CliError::new(format!("cannot create {}: {e}", path.display())))?;
    f(&mut file).map_err(|e| CliError::new(format!("cannot write {}: {e}", path.display())))
}

/// Checks that every registered scenario has a gallery section (a `##`
/// heading naming it in backticks) and a reproduction command
/// (`--scenario <name>`) in the docs file. Returns the missing names.
pub fn missing_gallery_sections(docs_text: &str) -> Vec<&'static str> {
    let mut missing = Vec::new();
    for name in ScenarioRegistry::global().names() {
        let heading = docs_text
            .lines()
            .any(|l| l.starts_with("## ") && l.contains(&format!("`{name}`")));
        let command = docs_text.contains(&format!("--scenario {name}"));
        if !(heading && command) {
            missing.push(name);
        }
    }
    missing
}

/// The `--smoke-all` gate: every registered scenario runs in smoke mode
/// on **both** pipelines, and every one has a `docs/SCENARIOS.md`
/// section — a new scenario cannot land unrunnable or undocumented.
pub fn smoke_all(docs: &Path, log: &mut dyn Write) -> Result<(), CliError> {
    for scenario in ScenarioRegistry::global().scenarios() {
        let info = scenario.info();
        for pipeline in [PipelineMode::Sharded, PipelineMode::Barrier] {
            let req = RunRequest {
                pipeline: Some(pipeline),
                ..RunRequest::smoke()
            };
            let summary = scenario.run(&req).map_err(|e| {
                CliError::new(format!("scenario `{}` ({pipeline:?}): {e}", info.name))
            })?;
            if !summary.l2_norm.is_finite() {
                return Err(CliError::new(format!(
                    "scenario `{}` ({pipeline:?}): non-finite L2 norm after {} steps",
                    info.name, summary.steps
                )));
            }
            let _ = writeln!(
                log,
                "smoke {:<20} {pipeline:?}: {} steps, L2 norm {:.3e} — ok",
                info.name, summary.steps, summary.l2_norm
            );
        }
    }
    let text = std::fs::read_to_string(docs).map_err(|e| {
        CliError::new(format!(
            "cannot read the scenario gallery {}: {e}",
            docs.display()
        ))
    })?;
    let missing = missing_gallery_sections(&text);
    if !missing.is_empty() {
        return Err(CliError::new(format!(
            "scenario(s) missing from the gallery {} (need a `## …` heading and an \
             `aderdg-run --scenario <name>` command): {}",
            docs.display(),
            missing.join(", ")
        )));
    }
    let _ = writeln!(
        log,
        "gallery {} covers all registered scenarios",
        docs.display()
    );
    Ok(())
}

/// The whole CLI: parse, dispatch, print to `stdout`/`log`.
pub fn run_cli(args: &[String], stdout: &mut dyn Write) -> Result<(), CliError> {
    match parse_args(args)? {
        Command::Help => {
            let _ = write!(stdout, "{USAGE}");
            Ok(())
        }
        Command::List => {
            let _ = write!(stdout, "{}", render_list());
            Ok(())
        }
        Command::ListNames => {
            for name in ScenarioRegistry::global().names() {
                let _ = writeln!(stdout, "{name}");
            }
            Ok(())
        }
        Command::Run(run) => {
            let summary = execute_run(&run)?;
            let _ = write!(stdout, "{}", render_summary(&summary));
            Ok(())
        }
        Command::SmokeAll { docs } => smoke_all(&docs, stdout),
    }
}
