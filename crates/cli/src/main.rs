//! `aderdg-run` — thin binary wrapper over [`aderdg_cli::run_cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    if let Err(e) = aderdg_cli::run_cli(&args, &mut stdout.lock()) {
        eprintln!("{e}");
        std::process::exit(2);
    }
}
