//! A dependency-free parser for the TOML subset the `aderdg-run` config
//! files use: `[table]` headers, `key = value` entries, `#` comments.
//!
//! Values may be bare scalars (`4`, `0.4`, `true`, `sharded`) or
//! double-quoted strings (`"run.csv"`, no escape sequences beyond `\"`
//! and `\\`); both come back as plain strings — typed conversion happens
//! at the consumer, which knows what each key means. This is exactly the
//! shape of the paper's specification files, one level richer (tables)
//! than [`aderdg_core::SolverSpec`]'s flat `key = value` format.

use std::fmt;

/// A parse error with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TomlError {
    /// 1-based line of the offending input.
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "config error (line {}): {}", self.line, self.message)
    }
}

impl std::error::Error for TomlError {}

/// One `key = value` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// The key.
    pub key: String,
    /// The (unquoted) value.
    pub value: String,
    /// 1-based source line (for consumer error messages).
    pub line: usize,
}

/// One `[name]` table and its entries. Entries before any header belong
/// to the root table (empty name).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table name (`""` for the root table).
    pub name: String,
    /// 1-based line of the header (0 for the root table).
    pub line: usize,
    /// Entries in source order.
    pub entries: Vec<Entry>,
}

/// A parsed document.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Doc {
    /// Tables in source order; the root table is present only if it has
    /// entries.
    pub tables: Vec<Table>,
}

impl Doc {
    /// The table of the given name, if present.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// A single value: `doc.get("solver", "order")`.
    pub fn get(&self, table: &str, key: &str) -> Option<&Entry> {
        self.table(table)
            .and_then(|t| t.entries.iter().find(|e| e.key == key))
    }
}

/// Strips an unquoted trailing comment.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_string && !escaped => escaped = true,
            '"' if !escaped => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => escaped = false,
        }
    }
    line
}

/// Unquotes a value token (validating quoted strings).
fn parse_value(raw: &str, line: usize) -> Result<String, TomlError> {
    let raw = raw.trim();
    if raw.is_empty() {
        return Err(TomlError {
            line,
            message: "missing value after `=`".into(),
        });
    }
    if let Some(rest) = raw.strip_prefix('"') {
        let Some(body) = rest.strip_suffix('"') else {
            return Err(TomlError {
                line,
                message: format!("unterminated string `{raw}`"),
            });
        };
        // Reject an interior unescaped quote (`"a" trailing"` etc.).
        let mut out = String::with_capacity(body.len());
        let mut escaped = false;
        for c in body.chars() {
            match c {
                '\\' if !escaped => escaped = true,
                '"' if !escaped => {
                    return Err(TomlError {
                        line,
                        message: format!("unexpected `\"` inside string `{raw}`"),
                    });
                }
                c if escaped && c != '"' && c != '\\' => {
                    return Err(TomlError {
                        line,
                        message: format!("unsupported escape `\\{c}` (only \\\" and \\\\)"),
                    });
                }
                c => {
                    escaped = false;
                    out.push(c);
                }
            }
        }
        if escaped {
            return Err(TomlError {
                line,
                message: format!("dangling `\\` in string `{raw}`"),
            });
        }
        return Ok(out);
    }
    if raw.contains(char::is_whitespace) || raw.contains('"') {
        return Err(TomlError {
            line,
            message: format!("bare value `{raw}` may not contain spaces or quotes (use \"…\")"),
        });
    }
    Ok(raw.to_string())
}

/// Parses a document; unknown syntax, duplicate keys and duplicate
/// tables are errors (configuration typos must fail loudly).
pub fn parse(text: &str) -> Result<Doc, TomlError> {
    let mut doc = Doc::default();
    let mut current = Table {
        name: String::new(),
        line: 0,
        entries: Vec::new(),
    };
    let flush = |t: &mut Table, doc: &mut Doc| {
        if !t.entries.is_empty() || !t.name.is_empty() {
            doc.tables.push(std::mem::replace(
                t,
                Table {
                    name: String::new(),
                    line: 0,
                    entries: Vec::new(),
                },
            ));
        }
    };
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let Some(name) = rest.strip_suffix(']') else {
                return Err(TomlError {
                    line: line_no,
                    message: format!("malformed table header `{line}`"),
                });
            };
            let name = name.trim();
            if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                return Err(TomlError {
                    line: line_no,
                    message: format!("invalid table name `{name}`"),
                });
            }
            flush(&mut current, &mut doc);
            if doc.tables.iter().any(|t| t.name == name) {
                return Err(TomlError {
                    line: line_no,
                    message: format!("duplicate table `[{name}]`"),
                });
            }
            current = Table {
                name: name.to_string(),
                line: line_no,
                entries: Vec::new(),
            };
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(TomlError {
                line: line_no,
                message: format!("expected `key = value` or `[table]`, got `{line}`"),
            });
        };
        let key = key.trim();
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(TomlError {
                line: line_no,
                message: format!("invalid key `{key}`"),
            });
        }
        if current.entries.iter().any(|e| e.key == key) {
            return Err(TomlError {
                line: line_no,
                message: format!("duplicate key `{key}`"),
            });
        }
        current.entries.push(Entry {
            key: key.to_string(),
            value: parse_value(value, line_no)?,
            line: line_no,
        });
    }
    flush(&mut current, &mut doc);
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_comments_and_strings() {
        let doc = parse(
            "# run file\n\
             toplevel = 1\n\
             [run]\n\
             scenario = \"loh1\"   # quoted\n\
             cells = 4\n\
             \n\
             [solver]\n\
             order = 4\n\
             kernel = aosoa_splitck\n",
        )
        .unwrap();
        assert_eq!(doc.tables.len(), 3);
        assert_eq!(doc.get("", "toplevel").unwrap().value, "1");
        assert_eq!(doc.get("run", "scenario").unwrap().value, "loh1");
        assert_eq!(doc.get("run", "cells").unwrap().value, "4");
        assert_eq!(doc.get("solver", "kernel").unwrap().value, "aosoa_splitck");
        assert_eq!(doc.get("solver", "order").unwrap().line, 8);
        assert!(doc.get("run", "missing").is_none());
        assert!(doc.table("nope").is_none());
    }

    #[test]
    fn string_escapes_and_hash_inside_string() {
        let doc = parse("[run]\nout = \"a#b \\\"c\\\" \\\\d\"\n").unwrap();
        assert_eq!(doc.get("run", "out").unwrap().value, "a#b \"c\" \\d");
    }

    #[test]
    fn rejects_malformed_lines_with_line_numbers() {
        for (text, needle, line) in [
            ("order 4\n", "key = value", 1),
            ("[run\n", "malformed table header", 1),
            ("[]\n", "invalid table name", 1),
            ("[run]\nkey =\n", "missing value", 2),
            ("[run]\nout = \"oops\n", "unterminated string", 2),
            ("[run]\nout = \"a\" b\"\n", "unexpected", 2),
            ("[run]\nout = two words\n", "bare value", 2),
            ("[run]\nout = \"\\n\"\n", "unsupported escape", 2),
            ("[run]\na = 1\na = 2\n", "duplicate key", 3),
            ("[run]\n[run]\n", "duplicate table", 2),
            ("[run]\nbad key = 1\n", "invalid key", 2),
        ] {
            let e = parse(text).unwrap_err();
            assert!(
                e.message.contains(needle),
                "`{text}`: message `{}` lacks `{needle}`",
                e.message
            );
            assert_eq!(e.line, line, "`{text}`");
            assert!(e.to_string().contains(&format!("line {line}")));
        }
    }

    #[test]
    fn empty_and_comment_only_documents_are_empty() {
        assert!(parse("").unwrap().tables.is_empty());
        assert!(parse("# nothing\n\n").unwrap().tables.is_empty());
    }
}
