//! SIMD padding arithmetic.
//!
//! The Kernel Generator in the paper zero-pads the leading dimension of
//! every tensor to the next multiple of the SIMD vector length so that each
//! matrix slice stays aligned (Sec. III-A). These helpers centralize that
//! arithmetic; the actual pad value is part of every layout descriptor.

/// SIMD vector width in doubles, i.e. the unit the leading tensor dimension
/// is padded to. Mirrors the architecture switch of the paper's Kernel
/// Generator (Haswell/AVX2 vs. Skylake/AVX-512).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdWidth {
    /// 128-bit SSE2 / NEON: 2 doubles.
    W2,
    /// 256-bit AVX2: 4 doubles (paper's "Haswell" configuration).
    W4,
    /// 512-bit AVX-512: 8 doubles (paper's "Skylake" configuration).
    W8,
}

impl SimdWidth {
    /// Number of doubles per SIMD register.
    #[inline]
    pub const fn doubles(self) -> usize {
        match self {
            SimdWidth::W2 => 2,
            SimdWidth::W4 => 4,
            SimdWidth::W8 => 8,
        }
    }

    /// Register width in bits (for reporting, e.g. the Fig. 9 mix).
    #[inline]
    pub const fn bits(self) -> usize {
        self.doubles() * 64
    }

    /// All widths, widest first (used by the instruction-mix model: the
    /// compiler packs at the widest width first, remainders at narrower
    /// widths, leftovers scalar).
    pub const ALL_DESC: [SimdWidth; 3] = [SimdWidth::W8, SimdWidth::W4, SimdWidth::W2];

    /// The widest width supported by the *host* CPU, detected at runtime.
    /// Falls back to `W2` on non-x86 targets (128-bit NEON et al.).
    pub fn host() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                return SimdWidth::W8;
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                return SimdWidth::W4;
            }
            SimdWidth::W2
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            SimdWidth::W2
        }
    }
}

/// Rounds `n` up to the next multiple of `w` (`w > 0`).
#[inline]
pub const fn pad_to(n: usize, w: usize) -> usize {
    debug_assert!(w > 0);
    n.div_ceil(w) * w
}

/// Rounds `n` up to the next multiple of the SIMD width.
#[inline]
pub const fn pad_to_simd(n: usize, w: SimdWidth) -> usize {
    pad_to(n, w.doubles())
}

/// Fraction of wasted (zero-padded) entries when padding `n` to width `w`.
///
/// The paper notes that order `N = 8` (9 nodes per dimension... no: 8+1)
/// — concretely, on AVX-512 the AoSoA layout pads the x-dimension; an
/// x-extent that is already a multiple of 8 has zero overhead ("order 8 is
/// a sweetspot"), while an extent of 9 pads to 16 and nearly doubles the
/// stored lines ("order 9 suffers from a particularly large padding
/// overhead", Sec. V-A).
#[inline]
pub fn padding_overhead(n: usize, w: SimdWidth) -> f64 {
    let p = pad_to_simd(n, w);
    (p - n) as f64 / p as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(SimdWidth::W2.doubles(), 2);
        assert_eq!(SimdWidth::W4.doubles(), 4);
        assert_eq!(SimdWidth::W8.doubles(), 8);
        assert_eq!(SimdWidth::W8.bits(), 512);
        assert_eq!(SimdWidth::W4.bits(), 256);
        assert_eq!(SimdWidth::W2.bits(), 128);
    }

    #[test]
    fn pad_arithmetic() {
        assert_eq!(pad_to(0, 8), 0);
        assert_eq!(pad_to(1, 8), 8);
        assert_eq!(pad_to(8, 8), 8);
        assert_eq!(pad_to(9, 8), 16);
        assert_eq!(pad_to(21, 4), 24);
        assert_eq!(pad_to(21, 8), 24);
        assert_eq!(pad_to(21, 2), 22);
    }

    #[test]
    fn paper_sweetspot_order8_vs_order9() {
        // Order N in the paper means N+1 nodes... the paper indexes orders
        // 4..11 with N nodes per dimension required for N-th order; its
        // AVX-512 sweetspot statement maps to an x-extent of 8 (no padding)
        // vs 9 (pads to 16).
        assert_eq!(padding_overhead(8, SimdWidth::W8), 0.0);
        let o9 = padding_overhead(9, SimdWidth::W8);
        assert!(o9 > 0.4 && o9 < 0.5, "overhead {o9}");
    }

    #[test]
    fn host_width_is_valid() {
        let w = SimdWidth::host();
        assert!(matches!(w, SimdWidth::W2 | SimdWidth::W4 | SimdWidth::W8));
    }
}
