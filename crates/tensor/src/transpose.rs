//! Layout conversions (transposes) between AoS, SoA and AoSoA tensors.
//!
//! The AoSoA SplitCK kernel receives engine data in AoS, transposes it to
//! AoSoA on entry and back on exit (paper Sec. V-B); the rejected
//! alternative transposes AoS↔SoA around every user-function call
//! (Sec. V-A). Both are provided so the ablation benches can compare them.

use crate::layout::DofLayout;

/// Copies the useful entries of `src` (layout `src_l`) into `dst`
/// (layout `dst_l`). Padding entries of `dst` are left untouched, so a
/// zero-initialized destination keeps the zero-padding invariant.
///
/// Panics if the layouts disagree on `n`/`m` or a buffer is too short.
pub fn convert(src: &[f64], src_l: &DofLayout, dst: &mut [f64], dst_l: &DofLayout) {
    assert_eq!(src_l.n, dst_l.n, "layout n mismatch");
    assert_eq!(src_l.m, dst_l.m, "layout m mismatch");
    assert!(src.len() >= src_l.len(), "source buffer too short");
    assert!(dst.len() >= dst_l.len(), "destination buffer too short");
    let (n, m) = (src_l.n, src_l.m);
    for k3 in 0..n {
        for k2 in 0..n {
            for k1 in 0..n {
                for s in 0..m {
                    dst[dst_l.idx(k3, k2, k1, s)] = src[src_l.idx(k3, k2, k1, s)];
                }
            }
        }
    }
}

/// AoS → AoSoA fast path: for each `(k3, k2)` plane, transposes the
/// `n × m_pad` AoS block into the `m × n_pad` AoSoA block. This is the
/// kernel-entry transpose of Sec. V-B.
pub fn aos_to_aosoa(src: &[f64], src_l: &DofLayout, dst: &mut [f64], dst_l: &DofLayout) {
    debug_assert_eq!(src_l.kind, crate::layout::LayoutKind::Aos);
    debug_assert_eq!(dst_l.kind, crate::layout::LayoutKind::AoSoA);
    assert_eq!(src_l.n, dst_l.n, "layout n mismatch");
    assert_eq!(src_l.m, dst_l.m, "layout m mismatch");
    assert!(src.len() >= src_l.len(), "source buffer too short");
    assert!(dst.len() >= dst_l.len(), "destination buffer too short");
    let (n, m) = (src_l.n, src_l.m);
    let (m_pad, n_pad) = (src_l.m_pad(), dst_l.n_pad());
    for plane in 0..n * n {
        let sb = plane * n * m_pad;
        let db = plane * m * n_pad;
        let src_block = &src[sb..sb + n * m_pad];
        let dst_block = &mut dst[db..db + m * n_pad];
        for k1 in 0..n {
            let row = &src_block[k1 * m_pad..k1 * m_pad + m];
            for (s, &v) in row.iter().enumerate() {
                dst_block[s * n_pad + k1] = v;
            }
        }
    }
}

/// AoSoA → AoS fast path (kernel-exit transpose of Sec. V-B).
pub fn aosoa_to_aos(src: &[f64], src_l: &DofLayout, dst: &mut [f64], dst_l: &DofLayout) {
    debug_assert_eq!(src_l.kind, crate::layout::LayoutKind::AoSoA);
    debug_assert_eq!(dst_l.kind, crate::layout::LayoutKind::Aos);
    assert_eq!(src_l.n, dst_l.n, "layout n mismatch");
    assert_eq!(src_l.m, dst_l.m, "layout m mismatch");
    assert!(src.len() >= src_l.len(), "source buffer too short");
    assert!(dst.len() >= dst_l.len(), "destination buffer too short");
    let (n, m) = (src_l.n, src_l.m);
    let (n_pad, m_pad) = (src_l.n_pad(), dst_l.m_pad());
    for plane in 0..n * n {
        let sb = plane * m * n_pad;
        let db = plane * n * m_pad;
        let src_block = &src[sb..sb + m * n_pad];
        let dst_block = &mut dst[db..db + n * m_pad];
        for s in 0..m {
            let line = &src_block[s * n_pad..s * n_pad + n];
            for (k1, &v) in line.iter().enumerate() {
                dst_block[k1 * m_pad + s] = v;
            }
        }
    }
}

/// Transposes a dense row-major `rows × cols` matrix into a new
/// `cols × rows` matrix (used to precompute `Dᵀ` for the AoSoA x-derivative,
/// `Cᵀ = Bᵀ Aᵀ`, Sec. V-B).
pub fn transpose_matrix(a: &[f64], rows: usize, cols: usize) -> Vec<f64> {
    assert!(a.len() >= rows * cols, "matrix buffer too short");
    let mut out = vec![0.0; rows * cols];
    for i in 0..rows {
        for j in 0..cols {
            out[j * rows + i] = a[i * cols + j];
        }
    }
    out
}

/// Transposes a dense row-major `rows × cols` matrix into a padded
/// row-major `cols × ld` buffer (rows padded with zeros up to `ld`).
pub fn transpose_matrix_padded(a: &[f64], rows: usize, cols: usize, ld: usize) -> Vec<f64> {
    assert!(ld >= rows, "padded leading dimension shorter than rows");
    assert!(a.len() >= rows * cols, "matrix buffer too short");
    let mut out = vec![0.0; cols * ld];
    for i in 0..rows {
        for j in 0..cols {
            out[j * ld + i] = a[i * cols + j];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{DofLayout, LayoutKind};
    use crate::padding::SimdWidth;

    fn filled(l: &DofLayout) -> Vec<f64> {
        let mut v = vec![0.0; l.len()];
        for k3 in 0..l.n {
            for k2 in 0..l.n {
                for k1 in 0..l.n {
                    for s in 0..l.m {
                        v[l.idx(k3, k2, k1, s)] = (((k3 * 100 + k2) * 100 + k1) * 100 + s) as f64;
                    }
                }
            }
        }
        v
    }

    #[test]
    fn generic_convert_all_pairs() {
        let kinds = [LayoutKind::Aos, LayoutKind::Soa, LayoutKind::AoSoA];
        for &a in &kinds {
            for &b in &kinds {
                let la = DofLayout::new(4, 5, SimdWidth::W8, a);
                let lb = DofLayout::new(4, 5, SimdWidth::W4, b);
                let src = filled(&la);
                let mut dst = vec![0.0; lb.len()];
                convert(&src, &la, &mut dst, &lb);
                assert_eq!(dst, filled(&lb), "{a:?} -> {b:?}");
            }
        }
    }

    #[test]
    fn fast_paths_match_generic() {
        let la = DofLayout::aos(6, 9, SimdWidth::W8);
        let lb = DofLayout::aosoa(6, 9, SimdWidth::W8);
        let src = filled(&la);

        let mut fast = vec![0.0; lb.len()];
        aos_to_aosoa(&src, &la, &mut fast, &lb);
        let mut slow = vec![0.0; lb.len()];
        convert(&src, &la, &mut slow, &lb);
        assert_eq!(fast, slow);

        let mut back = vec![0.0; la.len()];
        aosoa_to_aos(&fast, &lb, &mut back, &la);
        assert_eq!(back, src);
    }

    #[test]
    fn roundtrip_preserves_padding_zeros() {
        let la = DofLayout::aos(3, 3, SimdWidth::W8);
        let lb = DofLayout::aosoa(3, 3, SimdWidth::W8);
        let src = filled(&la);
        let mut mid = vec![0.0; lb.len()];
        aos_to_aosoa(&src, &la, &mut mid, &lb);
        // Padding entries (k1 in 3..8 for every (k3,k2,s)) must stay zero.
        for plane in 0..9 {
            for s in 0..3 {
                for k1 in 3..8 {
                    assert_eq!(mid[(plane * 3 + s) * 8 + k1], 0.0);
                }
            }
        }
    }

    #[test]
    fn dense_transpose() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 2x3
        assert_eq!(
            transpose_matrix(&a, 2, 3),
            vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]
        );
        let p = transpose_matrix_padded(&a, 2, 3, 4);
        assert_eq!(
            p,
            vec![1.0, 4.0, 0.0, 0.0, 2.0, 5.0, 0.0, 0.0, 3.0, 6.0, 0.0, 0.0]
        );
    }

    #[test]
    fn double_transpose_is_identity() {
        let a: Vec<f64> = (0..12).map(|x| x as f64).collect(); // 3x4
        let t = transpose_matrix(&a, 3, 4);
        let tt = transpose_matrix(&t, 4, 3);
        assert_eq!(tt, a);
    }
}
