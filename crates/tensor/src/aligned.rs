//! Cache-line-aligned `f64` buffers.
//!
//! All tensors used by the optimized kernels must be aligned to the SIMD
//! register size so that every padded slice starts on an aligned address
//! (paper, Sec. III-A). We align to 64 bytes, which covers AVX-512 registers
//! and the cache-line size used throughout the performance model.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;

/// Alignment (bytes) of every [`AlignedVec`] allocation: one cache line /
/// one AVX-512 register.
pub const ALIGNMENT: usize = 64;

/// A fixed-size, 64-byte-aligned, heap-allocated `f64` buffer.
///
/// Unlike `Vec<f64>`, the allocation is guaranteed to start on a 64-byte
/// boundary, and the buffer cannot grow — kernel plans size their
/// temporaries once. The buffer is zero-initialized, which doubles as the
/// zero-padding guarantee for padded tensor layouts.
pub struct AlignedVec {
    ptr: NonNull<f64>,
    len: usize,
}

// SAFETY: AlignedVec owns its allocation exclusively; `f64` is Send + Sync.
unsafe impl Send for AlignedVec {}
unsafe impl Sync for AlignedVec {}

impl AlignedVec {
    /// Allocates a zero-filled buffer of `len` doubles.
    ///
    /// A zero-length buffer performs no allocation.
    pub fn zeroed(len: usize) -> Self {
        if len == 0 {
            return Self {
                ptr: NonNull::<f64>::dangling(),
                len: 0,
            };
        }
        let layout = Self::layout(len);
        // SAFETY: layout has non-zero size (len > 0).
        let raw = unsafe { alloc_zeroed(layout) };
        let Some(ptr) = NonNull::new(raw.cast::<f64>()) else {
            handle_alloc_error(layout);
        };
        Self { ptr, len }
    }

    /// Allocates an aligned copy of `src`.
    pub fn from_slice(src: &[f64]) -> Self {
        let mut v = Self::zeroed(src.len());
        v.as_mut_slice().copy_from_slice(src);
        v
    }

    fn layout(len: usize) -> Layout {
        Layout::from_size_align(len * std::mem::size_of::<f64>(), ALIGNMENT)
            // PANIC-OK: a buffer bigger than isize::MAX bytes is already
            // an unrecoverable programming error.
            .expect("AlignedVec layout overflow")
    }

    /// Number of doubles in the buffer.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the buffer holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Immutable view of the whole buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        // SAFETY: ptr is valid for len reads (owned allocation).
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// Mutable view of the whole buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        // SAFETY: ptr is valid for len reads/writes and we hold &mut self.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }

    /// Resets every element to zero (restores the padding invariant).
    pub fn fill_zero(&mut self) {
        self.as_mut_slice().fill(0.0);
    }

    /// Base address of the allocation, for alignment checks and the cache
    /// simulator's address traces.
    #[inline]
    pub fn base_addr(&self) -> usize {
        self.ptr.as_ptr() as usize
    }
}

impl Drop for AlignedVec {
    fn drop(&mut self) {
        if self.len != 0 {
            // SAFETY: allocated in `zeroed` with the same layout.
            unsafe { dealloc(self.ptr.as_ptr().cast(), Self::layout(self.len)) };
        }
    }
}

impl Clone for AlignedVec {
    fn clone(&self) -> Self {
        Self::from_slice(self.as_slice())
    }
}

impl Deref for AlignedVec {
    type Target = [f64];
    #[inline]
    fn deref(&self) -> &[f64] {
        self.as_slice()
    }
}

impl DerefMut for AlignedVec {
    #[inline]
    fn deref_mut(&mut self) -> &mut [f64] {
        self.as_mut_slice()
    }
}

impl fmt::Debug for AlignedVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AlignedVec")
            .field("len", &self.len)
            .field("data", &self.as_slice())
            .finish()
    }
}

impl PartialEq for AlignedVec {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl From<Vec<f64>> for AlignedVec {
    fn from(v: Vec<f64>) -> Self {
        Self::from_slice(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_is_zero_and_aligned() {
        let v = AlignedVec::zeroed(1000);
        assert_eq!(v.len(), 1000);
        assert!(v.iter().all(|&x| x == 0.0));
        assert_eq!(v.base_addr() % ALIGNMENT, 0);
    }

    #[test]
    fn empty_buffer() {
        let v = AlignedVec::zeroed(0);
        assert!(v.is_empty());
        assert_eq!(v.as_slice(), &[] as &[f64]);
        let w = v.clone();
        assert_eq!(v, w);
    }

    #[test]
    fn from_slice_roundtrip() {
        let data: Vec<f64> = (0..257).map(|i| i as f64 * 0.5).collect();
        let v = AlignedVec::from_slice(&data);
        assert_eq!(v.as_slice(), data.as_slice());
        assert_eq!(v.base_addr() % ALIGNMENT, 0);
    }

    #[test]
    fn clone_is_deep() {
        let mut a = AlignedVec::from_slice(&[1.0, 2.0, 3.0]);
        let b = a.clone();
        a[0] = 99.0;
        assert_eq!(b.as_slice(), &[1.0, 2.0, 3.0]);
        assert_eq!(a[0], 99.0);
    }

    #[test]
    fn mutation_through_deref() {
        let mut v = AlignedVec::zeroed(8);
        for (i, x) in v.iter_mut().enumerate() {
            *x = i as f64;
        }
        assert_eq!(v[7], 7.0);
        v.fill_zero();
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn odd_sizes_stay_aligned() {
        for len in [1, 3, 7, 9, 63, 65, 127] {
            let v = AlignedVec::zeroed(len);
            assert_eq!(v.base_addr() % ALIGNMENT, 0, "len={len}");
            assert_eq!(v.len(), len);
        }
    }
}
