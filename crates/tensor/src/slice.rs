//! Matrix-slice views over tensors (paper Fig. 3).
//!
//! A tensor stored linearly can expose 2-D matrix slices without copying by
//! recording an *offset* (slices along the two fastest dimensions) and a
//! *slice stride* (slices along a slower dimension, interpreted by the GEMM
//! as a padded leading dimension). The paper feeds exactly these
//! offset+stride views to LIBXSMM; we feed them to `aderdg-gemm`.

/// Read-only `rows × cols` matrix view with an explicit row stride,
/// referencing a sub-range of a flat buffer.
#[derive(Debug, Clone, Copy)]
pub struct MatView<'a> {
    data: &'a [f64],
    rows: usize,
    cols: usize,
    row_stride: usize,
}

impl<'a> MatView<'a> {
    /// Creates a view of `rows × cols` entries starting at `offset`, rows
    /// `row_stride` doubles apart. Panics if the view would read out of
    /// bounds.
    pub fn new(
        data: &'a [f64],
        offset: usize,
        rows: usize,
        cols: usize,
        row_stride: usize,
    ) -> Self {
        assert!(
            row_stride >= cols || rows <= 1,
            "row stride shorter than a row"
        );
        let end = if rows == 0 || cols == 0 {
            offset
        } else {
            offset + (rows - 1) * row_stride + cols
        };
        assert!(end <= data.len(), "matrix view out of bounds");
        Self {
            data: &data[offset..],
            rows,
            cols,
            row_stride,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Distance between row starts, in doubles (the GEMM leading dimension).
    #[inline]
    pub fn row_stride(&self) -> usize {
        self.row_stride
    }

    /// Element `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.row_stride + j]
    }

    /// Row `i` as a contiguous slice of `cols` doubles.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.row_stride..i * self.row_stride + self.cols]
    }

    /// The raw underlying storage from the view's origin (used by GEMM
    /// kernels that take `(&[f64], ld)` pairs).
    #[inline]
    pub fn raw(&self) -> &[f64] {
        self.data
    }

    /// Copies the view into a dense `rows × cols` `Vec` (row-major).
    pub fn to_dense(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.rows * self.cols);
        for i in 0..self.rows {
            out.extend_from_slice(self.row(i));
        }
        out
    }
}

/// Mutable counterpart of [`MatView`].
#[derive(Debug)]
pub struct MatViewMut<'a> {
    data: &'a mut [f64],
    rows: usize,
    cols: usize,
    row_stride: usize,
}

impl<'a> MatViewMut<'a> {
    /// See [`MatView::new`].
    pub fn new(
        data: &'a mut [f64],
        offset: usize,
        rows: usize,
        cols: usize,
        row_stride: usize,
    ) -> Self {
        assert!(
            row_stride >= cols || rows <= 1,
            "row stride shorter than a row"
        );
        let end = if rows == 0 || cols == 0 {
            offset
        } else {
            offset + (rows - 1) * row_stride + cols
        };
        assert!(end <= data.len(), "matrix view out of bounds");
        Self {
            data: &mut data[offset..],
            rows,
            cols,
            row_stride,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Leading dimension.
    #[inline]
    pub fn row_stride(&self) -> usize {
        self.row_stride
    }

    /// Element `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.row_stride + j]
    }

    /// Sets element `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.row_stride + j] = v;
    }

    /// Mutable contiguous row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.row_stride..i * self.row_stride + self.cols]
    }

    /// Raw storage from the view origin.
    #[inline]
    pub fn raw_mut(&mut self) -> &mut [f64] {
        self.data
    }

    /// Downgrades to a read-only view.
    #[inline]
    pub fn as_view(&self) -> MatView<'_> {
        MatView {
            data: self.data,
            rows: self.rows,
            cols: self.cols,
            row_stride: self.row_stride,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 3x2x3 tensor A[k][j][i] as in paper Fig. 3, stored row-major.
    fn fig3_tensor() -> Vec<f64> {
        (0..18).map(|x| x as f64).collect()
    }

    #[test]
    fn contiguous_slice_along_fastest_dims() {
        // A(1,:,:) — fix k=1: a 2x3 contiguous matrix at offset 6.
        let t = fig3_tensor();
        let v = MatView::new(&t, 6, 2, 3, 3);
        assert_eq!(v.to_dense(), vec![6.0, 7.0, 8.0, 9.0, 10.0, 11.0]);
    }

    #[test]
    fn strided_slice_along_slow_dim() {
        // A(:,1,:) — fix j=1: a 3x3 matrix whose rows are 6 apart
        // (the "slice stride" of Fig. 3).
        let t = fig3_tensor();
        let v = MatView::new(&t, 3, 3, 3, 6);
        assert_eq!(
            v.to_dense(),
            vec![3.0, 4.0, 5.0, 9.0, 10.0, 11.0, 15.0, 16.0, 17.0]
        );
        assert_eq!(v.get(2, 1), 16.0);
    }

    #[test]
    fn mutation_respects_stride() {
        let mut t = vec![0.0; 12];
        {
            let mut v = MatViewMut::new(&mut t, 1, 2, 2, 5);
            v.set(0, 0, 1.0);
            v.set(0, 1, 2.0);
            v.set(1, 0, 3.0);
            v.row_mut(1)[1] = 4.0;
            assert_eq!(v.get(1, 1), 4.0);
        }
        assert_eq!(
            t,
            vec![0.0, 1.0, 2.0, 0.0, 0.0, 0.0, 3.0, 4.0, 0.0, 0.0, 0.0, 0.0]
        );
    }

    #[test]
    fn view_of_view_mut_roundtrip() {
        let mut t: Vec<f64> = (0..9).map(|x| x as f64).collect();
        let v = MatViewMut::new(&mut t, 0, 3, 3, 3);
        let r = v.as_view();
        assert_eq!(r.get(1, 2), 5.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_rejected() {
        let t = vec![0.0; 10];
        let _ = MatView::new(&t, 0, 3, 3, 4);
    }

    #[test]
    fn empty_views_allowed() {
        let t = vec![0.0; 4];
        let v = MatView::new(&t, 4, 0, 3, 3);
        assert_eq!(v.rows(), 0);
        assert!(v.to_dense().is_empty());
    }
}
