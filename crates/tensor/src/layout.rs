//! Layout descriptors for the element-local degree-of-freedom tensors.
//!
//! A DG element of order `N` stores, at each of the `n = N` quadrature nodes
//! per dimension, `m` quantities. The resulting 4-D tensor over
//! `(k3, k2, k1, s)` — z, y, x node indices and the quantity index — can be
//! stored in three layouts (paper Sec. III-A and V-A):
//!
//! * **AoS** `A[k3][k2][k1][s]` — quantity fastest; what the engine API and
//!   the generic / LoG / SplitCK kernels use. The `s` extent is zero-padded
//!   to the SIMD width.
//! * **SoA** `A[s][k3][k2][k1]` — quantity slowest; what pointwise user
//!   functions would need for vectorization. The `k1` extent is padded.
//! * **AoSoA** `A[k3][k2][s][k1]` — the paper's hybrid: pseudo-AoS for the
//!   GEMMs, trivially-extractable SoA x-lines for the user functions. The
//!   `k1` extent is padded.

use crate::padding::{pad_to_simd, SimdWidth};

/// Which of the three storage orders a [`DofLayout`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayoutKind {
    /// `A[k3][k2][k1][s]`, `s` padded (quantity fastest).
    Aos,
    /// `A[s][k3][k2][k1]`, `k1` padded (quantity slowest).
    Soa,
    /// `A[k3][k2][s][k1]`, `k1` padded (hybrid, Sec. V).
    AoSoA,
}

/// Shape + storage-order descriptor for one element-local DOF tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DofLayout {
    /// Quadrature nodes per spatial dimension (= order `N` of the scheme).
    pub n: usize,
    /// Stored quantities per node (evolved variables + material parameters).
    pub m: usize,
    /// SIMD width the leading dimension is padded to.
    pub width: SimdWidth,
    /// Storage order.
    pub kind: LayoutKind,
}

impl DofLayout {
    /// Creates a layout descriptor. `n` and `m` must be non-zero.
    pub fn new(n: usize, m: usize, width: SimdWidth, kind: LayoutKind) -> Self {
        assert!(n > 0 && m > 0, "DofLayout requires n > 0 and m > 0");
        Self { n, m, width, kind }
    }

    /// AoS layout shortcut.
    pub fn aos(n: usize, m: usize, width: SimdWidth) -> Self {
        Self::new(n, m, width, LayoutKind::Aos)
    }

    /// SoA layout shortcut.
    pub fn soa(n: usize, m: usize, width: SimdWidth) -> Self {
        Self::new(n, m, width, LayoutKind::Soa)
    }

    /// AoSoA layout shortcut.
    pub fn aosoa(n: usize, m: usize, width: SimdWidth) -> Self {
        Self::new(n, m, width, LayoutKind::AoSoA)
    }

    /// Padded extent of the quantity dimension (`m_pad`).
    #[inline]
    pub fn m_pad(&self) -> usize {
        pad_to_simd(self.m, self.width)
    }

    /// Padded extent of the x dimension (`n_pad`).
    #[inline]
    pub fn n_pad(&self) -> usize {
        pad_to_simd(self.n, self.width)
    }

    /// Extent of the padded (fastest-running) dimension.
    #[inline]
    pub fn leading(&self) -> usize {
        match self.kind {
            LayoutKind::Aos => self.m_pad(),
            LayoutKind::Soa | LayoutKind::AoSoA => self.n_pad(),
        }
    }

    /// Total number of doubles a buffer of this layout holds
    /// (including padding).
    #[inline]
    pub fn len(&self) -> usize {
        let n = self.n;
        match self.kind {
            LayoutKind::Aos => n * n * n * self.m_pad(),
            LayoutKind::Soa => self.m * n * n * self.n_pad(),
            LayoutKind::AoSoA => n * n * self.m * self.n_pad(),
        }
    }

    /// True when the layout stores no unpadded entries — never the case for
    /// valid layouts; provided for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of *useful* (non-padding) doubles.
    #[inline]
    pub fn useful_len(&self) -> usize {
        self.n * self.n * self.n * self.m
    }

    /// Linear index of node `(k3, k2, k1)`, quantity `s`.
    #[inline]
    pub fn idx(&self, k3: usize, k2: usize, k1: usize, s: usize) -> usize {
        debug_assert!(k3 < self.n && k2 < self.n && k1 < self.n && s < self.m);
        let n = self.n;
        match self.kind {
            LayoutKind::Aos => ((k3 * n + k2) * n + k1) * self.m_pad() + s,
            LayoutKind::Soa => ((s * n + k3) * n + k2) * self.n_pad() + k1,
            LayoutKind::AoSoA => ((k3 * n + k2) * self.m + s) * self.n_pad() + k1,
        }
    }

    /// Stride (in doubles) between consecutive `k1` values at fixed
    /// `(k3, k2, s)`.
    #[inline]
    pub fn stride_k1(&self) -> usize {
        match self.kind {
            LayoutKind::Aos => self.m_pad(),
            LayoutKind::Soa | LayoutKind::AoSoA => 1,
        }
    }

    /// Stride between consecutive `s` values at fixed node.
    #[inline]
    pub fn stride_s(&self) -> usize {
        match self.kind {
            LayoutKind::Aos => 1,
            LayoutKind::Soa => self.n * self.n * self.n_pad(),
            LayoutKind::AoSoA => self.n_pad(),
        }
    }

    /// Stride between consecutive `k2` values at fixed `(k3, k1, s)`.
    #[inline]
    pub fn stride_k2(&self) -> usize {
        match self.kind {
            LayoutKind::Aos => self.n * self.m_pad(),
            LayoutKind::Soa => self.n_pad(),
            LayoutKind::AoSoA => self.m * self.n_pad(),
        }
    }

    /// Stride between consecutive `k3` values at fixed `(k2, k1, s)`.
    #[inline]
    pub fn stride_k3(&self) -> usize {
        self.n * self.stride_k2()
    }

    /// Offset of the SoA x-line `(k3, k2)` in an AoSoA tensor: an
    /// `m × n_pad` block in which quantity `s` occupies the contiguous
    /// run `[s * n_pad, s * n_pad + n)` — exactly the chunk handed to a
    /// vectorized user function (paper Sec. V-C).
    #[inline]
    pub fn xline_offset(&self, k3: usize, k2: usize) -> usize {
        debug_assert_eq!(self.kind, LayoutKind::AoSoA);
        (k3 * self.n + k2) * self.m * self.n_pad()
    }

    /// Bytes the tensor occupies — the quantity entering the memory-footprint
    /// comparison of Sec. IV-A.
    #[inline]
    pub fn bytes(&self) -> usize {
        self.len() * std::mem::size_of::<f64>()
    }
}

/// Layout for a face tensor: the `n × n` face nodes times `m` quantities in
/// AoS order `F[k2][k1][s]` with padded `s`, matching the engine's face
/// arrays (inputs to the corrector / Riemann solve).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaceLayout {
    /// Nodes per face dimension.
    pub n: usize,
    /// Stored quantities.
    pub m: usize,
    /// SIMD padding width.
    pub width: SimdWidth,
}

impl FaceLayout {
    /// Creates a face-tensor descriptor.
    pub fn new(n: usize, m: usize, width: SimdWidth) -> Self {
        assert!(n > 0 && m > 0, "FaceLayout requires n > 0 and m > 0");
        Self { n, m, width }
    }

    /// Padded quantity extent.
    #[inline]
    pub fn m_pad(&self) -> usize {
        pad_to_simd(self.m, self.width)
    }

    /// Total doubles including padding.
    #[inline]
    pub fn len(&self) -> usize {
        self.n * self.n * self.m_pad()
    }

    /// True if the layout holds no entries (never for valid layouts).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Linear index of face node `(k2, k1)`, quantity `s`.
    #[inline]
    pub fn idx(&self, k2: usize, k1: usize, s: usize) -> usize {
        debug_assert!(k2 < self.n && k1 < self.n && s < self.m);
        (k2 * self.n + k1) * self.m_pad() + s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: SimdWidth = SimdWidth::W4;

    #[test]
    fn aos_indexing_contract() {
        let l = DofLayout::aos(3, 5, W);
        assert_eq!(l.m_pad(), 8);
        assert_eq!(l.len(), 27 * 8);
        assert_eq!(l.idx(0, 0, 0, 0), 0);
        assert_eq!(l.idx(0, 0, 0, 4), 4);
        assert_eq!(l.idx(0, 0, 1, 0), 8);
        assert_eq!(l.idx(0, 1, 0, 0), 24);
        assert_eq!(l.idx(1, 0, 0, 0), 72);
        assert_eq!(l.stride_k1(), 8);
        assert_eq!(l.stride_s(), 1);
    }

    #[test]
    fn aosoa_indexing_contract() {
        let l = DofLayout::aosoa(6, 3, SimdWidth::W8);
        assert_eq!(l.n_pad(), 8);
        assert_eq!(l.len(), 36 * 3 * 8);
        // A[k3][k2][s][k1]
        assert_eq!(l.idx(0, 0, 1, 0), 1);
        assert_eq!(l.idx(0, 0, 0, 1), 8);
        assert_eq!(l.idx(0, 1, 0, 0), 24);
        assert_eq!(l.idx(1, 0, 0, 0), 144);
        assert_eq!(l.stride_k1(), 1);
        assert_eq!(l.stride_s(), 8);
        assert_eq!(l.xline_offset(1, 2), (6 + 2) * 3 * 8);
    }

    #[test]
    fn soa_indexing_contract() {
        let l = DofLayout::soa(4, 2, W);
        assert_eq!(l.n_pad(), 4);
        // A[s][k3][k2][k1]
        assert_eq!(l.idx(0, 0, 3, 0), 3);
        assert_eq!(l.idx(0, 1, 0, 0), 4);
        assert_eq!(l.idx(1, 0, 0, 0), 16);
        assert_eq!(l.idx(0, 0, 0, 1), 64);
        assert_eq!(l.stride_s(), 64);
    }

    #[test]
    fn indices_unique_and_in_bounds() {
        for kind in [LayoutKind::Aos, LayoutKind::Soa, LayoutKind::AoSoA] {
            let l = DofLayout::new(5, 9, SimdWidth::W8, kind);
            let mut seen = std::collections::HashSet::new();
            for k3 in 0..5 {
                for k2 in 0..5 {
                    for k1 in 0..5 {
                        for s in 0..9 {
                            let i = l.idx(k3, k2, k1, s);
                            assert!(i < l.len(), "{kind:?} out of bounds");
                            assert!(seen.insert(i), "{kind:?} duplicate index");
                        }
                    }
                }
            }
            assert_eq!(seen.len(), l.useful_len());
        }
    }

    #[test]
    fn strides_match_idx_deltas() {
        for kind in [LayoutKind::Aos, LayoutKind::Soa, LayoutKind::AoSoA] {
            let l = DofLayout::new(4, 3, SimdWidth::W4, kind);
            assert_eq!(l.idx(0, 0, 1, 0) - l.idx(0, 0, 0, 0), l.stride_k1());
            assert_eq!(l.idx(0, 1, 0, 0) - l.idx(0, 0, 0, 0), l.stride_k2());
            assert_eq!(l.idx(1, 0, 0, 0) - l.idx(0, 0, 0, 0), l.stride_k3());
            assert_eq!(l.idx(0, 0, 0, 1) - l.idx(0, 0, 0, 0), l.stride_s());
        }
    }

    #[test]
    fn footprint_bytes() {
        // Paper Sec. IV-A: m = 25, d = 3, generic temporaries O(N^{d+1} m d)
        // exceed 1 MB around N = 6. A single AoS DOF tensor at N = 6,
        // m = 25 (padded to 32 at AVX-512):
        let l = DofLayout::aos(6, 25, SimdWidth::W8);
        assert_eq!(l.bytes(), 6 * 6 * 6 * 32 * 8);
    }

    #[test]
    fn face_layout() {
        let f = FaceLayout::new(4, 9, SimdWidth::W8);
        assert_eq!(f.m_pad(), 16);
        assert_eq!(f.len(), 16 * 16);
        assert_eq!(f.idx(0, 0, 8), 8);
        assert_eq!(f.idx(0, 1, 0), 16);
        assert_eq!(f.idx(1, 0, 0), 64);
    }

    #[test]
    #[should_panic]
    fn zero_n_rejected() {
        let _ = DofLayout::aos(0, 3, W);
    }
}
