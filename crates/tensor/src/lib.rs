//! # aderdg-tensor
//!
//! Memory-layout substrate for the linear ADER-DG kernels: 64-byte-aligned
//! buffers, padded AoS / SoA / AoSoA layout descriptors for element-local
//! degree-of-freedom tensors, matrix-slice views (offset + slice stride,
//! paper Fig. 3), and the layout transposes used by the AoSoA kernel
//! (paper Sec. V).
//!
//! Everything in this crate is deliberately *mechanism*, not policy: the
//! kernel crates decide which layout each tensor uses; this crate guarantees
//! alignment, zero-padding and correct index arithmetic.

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod aligned;
pub mod layout;
pub mod lcg;
pub mod padding;
pub mod slice;
pub mod transpose;

pub use aligned::{AlignedVec, ALIGNMENT};
pub use layout::{DofLayout, FaceLayout, LayoutKind};
pub use lcg::Lcg;
pub use padding::{pad_to, pad_to_simd, padding_overhead, SimdWidth};
pub use slice::{MatView, MatViewMut};
pub use transpose::{
    aos_to_aosoa, aosoa_to_aos, convert, transpose_matrix, transpose_matrix_padded,
};
