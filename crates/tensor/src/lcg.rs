//! A tiny deterministic LCG used by tests, benches and examples across
//! the workspace — the hermetic substitute for an external RNG crate.
//! One canonical implementation instead of per-file copies.
//!
//! Knuth's MMIX multiplier; the top 53 bits feed the double mantissa.
//! Not for cryptography or statistics — for reproducible test data only.

/// Deterministic 64-bit linear congruential generator.
#[derive(Debug, Clone)]
pub struct Lcg(u64);

impl Lcg {
    /// Seeds the generator (any seed is fine, including 0).
    pub fn new(seed: u64) -> Self {
        Self(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1)
    }

    /// Next raw 64-bit state.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    /// Uniform double in `[lo, hi)`.
    pub fn f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64)
    }

    /// Uniform double in `[-0.5, 0.5)` (the historical test-state range).
    pub fn unit(&mut self) -> f64 {
        self.f64(-0.5, 0.5)
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn usize(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    /// A vector of `len` uniform doubles in `[lo, hi)`.
    pub fn vec(&mut self, len: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..len).map(|_| self.f64(lo, hi)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = Lcg::new(42);
        let mut b = Lcg::new(42);
        for _ in 0..100 {
            let x = a.f64(-1.0, 1.0);
            assert_eq!(x, b.f64(-1.0, 1.0));
            assert!((-1.0..1.0).contains(&x));
        }
        let mut c = Lcg::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn usize_respects_bounds() {
        let mut rng = Lcg::new(7);
        for _ in 0..1000 {
            let v = rng.usize(3, 9);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn vec_has_len_and_spread() {
        let mut rng = Lcg::new(1);
        let v = rng.vec(256, 0.0, 1.0);
        assert_eq!(v.len(), 256);
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        assert!((mean - 0.5).abs() < 0.1, "mean={mean}");
    }
}
