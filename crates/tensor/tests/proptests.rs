//! Property-style tests for the layout substrate, driven by deterministic
//! seeded sweeps (the container builds hermetically, so no external
//! property-testing framework is used — properties are checked over
//! exhaustive small domains plus LCG-random data).

use aderdg_tensor::{
    aos_to_aosoa, aosoa_to_aos, convert, pad_to, transpose_matrix, AlignedVec, DofLayout,
    LayoutKind, Lcg, MatView, SimdWidth, ALIGNMENT,
};

const WIDTHS: [SimdWidth; 3] = [SimdWidth::W2, SimdWidth::W4, SimdWidth::W8];
const KINDS: [LayoutKind; 3] = [LayoutKind::Aos, LayoutKind::Soa, LayoutKind::AoSoA];

#[test]
fn padding_is_minimal_multiple() {
    for n in 0usize..200 {
        for w in 1usize..16 {
            let p = pad_to(n, w);
            assert!(p >= n);
            assert_eq!(p % w, 0);
            assert!(p < n + w, "n={n} w={w} p={p}");
        }
    }
}

#[test]
fn aligned_vec_roundtrip() {
    for len in [0usize, 1, 2, 7, 64, 299] {
        let mut rng = Lcg::new(len as u64 + 11);
        let data: Vec<f64> = (0..len).map(|_| rng.f64(-1e9, 1e9)).collect();
        let v = AlignedVec::from_slice(&data);
        assert_eq!(v.as_slice(), data.as_slice());
        if !data.is_empty() {
            assert_eq!(v.base_addr() % ALIGNMENT, 0);
        }
    }
}

#[test]
fn layout_indices_bijective() {
    for n in 1usize..7 {
        for m in 1usize..12 {
            for w in WIDTHS {
                for kind in KINDS {
                    let l = DofLayout::new(n, m, w, kind);
                    let mut seen = std::collections::HashSet::new();
                    for k3 in 0..n {
                        for k2 in 0..n {
                            for k1 in 0..n {
                                for s in 0..m {
                                    let i = l.idx(k3, k2, k1, s);
                                    assert!(i < l.len());
                                    assert!(seen.insert(i), "duplicate index {i}");
                                }
                            }
                        }
                    }
                    assert_eq!(seen.len(), l.useful_len());
                }
            }
        }
    }
}

#[test]
fn convert_roundtrips_any_pair() {
    for (n, m) in [(1usize, 1usize), (3, 5), (5, 9), (4, 2)] {
        for wa in WIDTHS {
            for wb in WIDTHS {
                for ka in KINDS {
                    for kb in KINDS {
                        let la = DofLayout::new(n, m, wa, ka);
                        let lb = DofLayout::new(n, m, wb, kb);
                        let mut rng = Lcg::new((n * 31 + m) as u64 ^ 0xC0FFEE);
                        let mut src = vec![0.0; la.len()];
                        for k3 in 0..n {
                            for k2 in 0..n {
                                for k1 in 0..n {
                                    for s in 0..m {
                                        src[la.idx(k3, k2, k1, s)] = rng.f64(-1.0, 1.0);
                                    }
                                }
                            }
                        }
                        let mut mid = vec![0.0; lb.len()];
                        convert(&src, &la, &mut mid, &lb);
                        let mut back = vec![0.0; la.len()];
                        convert(&mid, &lb, &mut back, &la);
                        assert_eq!(back, src, "n={n} m={m} {ka:?}->{kb:?}");
                    }
                }
            }
        }
    }
}

#[test]
fn fast_transposes_match_generic() {
    for n in 1usize..7 {
        for m in [1usize, 3, 8, 11] {
            for w in WIDTHS {
                let la = DofLayout::aos(n, m, w);
                let lb = DofLayout::aosoa(n, m, w);
                let mut rng = Lcg::new((n * 131 + m) as u64 + 7);
                let mut src = vec![0.0; la.len()];
                for v in src.iter_mut() {
                    *v = rng.f64(-1.0, 1.0);
                }
                // Zero the AoS padding so the buffers are layout-valid.
                for k in 0..n * n * n {
                    for s in m..la.m_pad() {
                        src[k * la.m_pad() + s] = 0.0;
                    }
                }
                let mut fast = vec![0.0; lb.len()];
                aos_to_aosoa(&src, &la, &mut fast, &lb);
                let mut slow = vec![0.0; lb.len()];
                convert(&src, &la, &mut slow, &lb);
                assert_eq!(fast, slow, "n={n} m={m} {w:?}");
                let mut back = vec![0.0; la.len()];
                aosoa_to_aos(&fast, &lb, &mut back, &la);
                assert_eq!(back, src);
            }
        }
    }
}

#[test]
fn matview_matches_direct_indexing() {
    for rows in 1usize..8 {
        for cols in 1usize..8 {
            for extra in 0usize..5 {
                for offset in [0usize, 1, 7, 15] {
                    let stride = cols + extra;
                    let data: Vec<f64> = (0..offset + rows * stride).map(|x| x as f64).collect();
                    let v = MatView::new(&data, offset, rows, cols, stride);
                    for i in 0..rows {
                        for j in 0..cols {
                            assert_eq!(v.get(i, j), (offset + i * stride + j) as f64);
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn transpose_involution() {
    for rows in 1usize..10 {
        for cols in 1usize..10 {
            let mut rng = Lcg::new((rows * 17 + cols) as u64);
            let a: Vec<f64> = (0..rows * cols).map(|_| rng.f64(-1.0, 1.0)).collect();
            let t = transpose_matrix(&a, rows, cols);
            let tt = transpose_matrix(&t, cols, rows);
            assert_eq!(tt, a);
        }
    }
}
