//! Property-based tests for the layout substrate.

use aderdg_tensor::{
    aos_to_aosoa, aosoa_to_aos, convert, pad_to, transpose_matrix, AlignedVec, DofLayout,
    LayoutKind, MatView, SimdWidth, ALIGNMENT,
};
use proptest::prelude::*;

fn arb_width() -> impl Strategy<Value = SimdWidth> {
    prop_oneof![
        Just(SimdWidth::W2),
        Just(SimdWidth::W4),
        Just(SimdWidth::W8)
    ]
}

fn arb_kind() -> impl Strategy<Value = LayoutKind> {
    prop_oneof![
        Just(LayoutKind::Aos),
        Just(LayoutKind::Soa),
        Just(LayoutKind::AoSoA)
    ]
}

proptest! {
    #[test]
    fn padding_is_minimal_multiple(n in 0usize..200, w in 1usize..16) {
        let p = pad_to(n, w);
        prop_assert!(p >= n);
        prop_assert_eq!(p % w, 0);
        prop_assert!(p < n + w);
    }

    #[test]
    fn aligned_vec_roundtrip(data in prop::collection::vec(-1e9f64..1e9, 0..300)) {
        let v = AlignedVec::from_slice(&data);
        prop_assert_eq!(v.as_slice(), data.as_slice());
        if !data.is_empty() {
            prop_assert_eq!(v.base_addr() % ALIGNMENT, 0);
        }
    }

    #[test]
    fn layout_indices_bijective(
        n in 1usize..7,
        m in 1usize..12,
        w in arb_width(),
        kind in arb_kind(),
    ) {
        let l = DofLayout::new(n, m, w, kind);
        let mut seen = std::collections::HashSet::new();
        for k3 in 0..n {
            for k2 in 0..n {
                for k1 in 0..n {
                    for s in 0..m {
                        let i = l.idx(k3, k2, k1, s);
                        prop_assert!(i < l.len());
                        prop_assert!(seen.insert(i));
                    }
                }
            }
        }
        prop_assert_eq!(seen.len(), l.useful_len());
    }

    #[test]
    fn convert_roundtrips_any_pair(
        n in 1usize..6,
        m in 1usize..10,
        wa in arb_width(),
        wb in arb_width(),
        ka in arb_kind(),
        kb in arb_kind(),
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let la = DofLayout::new(n, m, wa, ka);
        let lb = DofLayout::new(n, m, wb, kb);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut src = vec![0.0; la.len()];
        for k3 in 0..n {
            for k2 in 0..n {
                for k1 in 0..n {
                    for s in 0..m {
                        src[la.idx(k3, k2, k1, s)] = rng.gen_range(-1.0..1.0);
                    }
                }
            }
        }
        let mut mid = vec![0.0; lb.len()];
        convert(&src, &la, &mut mid, &lb);
        let mut back = vec![0.0; la.len()];
        convert(&mid, &lb, &mut back, &la);
        prop_assert_eq!(back, src);
    }

    #[test]
    fn fast_transposes_match_generic(
        n in 1usize..7,
        m in 1usize..12,
        w in arb_width(),
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let la = DofLayout::aos(n, m, w);
        let lb = DofLayout::aosoa(n, m, w);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut src = vec![0.0; la.len()];
        for v in src.iter_mut() {
            *v = rng.gen_range(-1.0..1.0);
        }
        // Zero the AoS padding so the buffers are layout-valid.
        for k in 0..n * n * n {
            for s in m..la.m_pad() {
                src[k * la.m_pad() + s] = 0.0;
            }
        }
        let mut fast = vec![0.0; lb.len()];
        aos_to_aosoa(&src, &la, &mut fast, &lb);
        let mut slow = vec![0.0; lb.len()];
        convert(&src, &la, &mut slow, &lb);
        prop_assert_eq!(&fast, &slow);
        let mut back = vec![0.0; la.len()];
        aosoa_to_aos(&fast, &lb, &mut back, &la);
        prop_assert_eq!(back, src);
    }

    #[test]
    fn matview_matches_direct_indexing(
        rows in 1usize..8,
        cols in 1usize..8,
        extra in 0usize..5,
        offset in 0usize..16,
    ) {
        let stride = cols + extra;
        let data: Vec<f64> = (0..offset + rows * stride).map(|x| x as f64).collect();
        let v = MatView::new(&data, offset, rows, cols, stride);
        for i in 0..rows {
            for j in 0..cols {
                prop_assert_eq!(v.get(i, j), (offset + i * stride + j) as f64);
            }
        }
    }

    #[test]
    fn transpose_involution(rows in 1usize..10, cols in 1usize..10, seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a: Vec<f64> = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let t = transpose_matrix(&a, rows, cols);
        let tt = transpose_matrix(&t, cols, rows);
        prop_assert_eq!(tt, a);
    }
}
