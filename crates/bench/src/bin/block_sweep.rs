//! Step time vs predictor block size — the measurement behind the
//! cell-block pipeline and the [`auto_block_size`] heuristic.
//!
//! For every registered kernel, drives a full acoustic engine across a
//! sweep of block sizes and prints microseconds per cell per step; the
//! block size the footprint heuristic would pick is marked `*`. Kernels
//! with a real block implementation (generic, aosoa_splitck) amortize
//! operator loads with growing blocks until the block working set
//! outgrows L2; kernels on the per-cell fallback should be flat.
//!
//! Environment: `ADERDG_BLOCK_ORDER` (default 5) sets the scheme order,
//! `ADERDG_BLOCK_CELLS` (default 6) the cells per mesh dimension,
//! `ADERDG_THREADS` caps the cell-loop parallelism (1 recommended for
//! clean per-cell timings).

use aderdg_core::{auto_block_size, Engine, EngineConfig, KernelRegistry};
use aderdg_mesh::StructuredMesh;
use aderdg_pde::{Acoustic, AcousticPlaneWave, ExactSolution};
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

fn main() {
    let order = env_usize("ADERDG_BLOCK_ORDER", 5);
    let cells_per_dim = env_usize("ADERDG_BLOCK_CELLS", 6);
    let steps = 3;
    let block_sizes = [1usize, 2, 4, 8, 16];
    let wave = AcousticPlaneWave {
        direction: [1.0, 0.0, 0.0],
        amplitude: 1.0,
        wavenumber: 1.0,
        rho: 1.0,
        bulk: 1.0,
    };

    println!(
        "=== Step time vs block size (acoustic, order {order}, {0}^3 cells) ===",
        cells_per_dim
    );
    print!("{:>16}", "kernel");
    for bs in block_sizes {
        print!(" {bs:>9}");
    }
    println!("   (us/cell/step; * = heuristic pick)");

    for kernel in KernelRegistry::global().kernels() {
        print!("{:>16}", kernel.name());
        let mut auto_pick = 0;
        for (i, &bs) in block_sizes.iter().enumerate() {
            let mesh = StructuredMesh::unit_cube(cells_per_dim);
            let cells = mesh.num_cells();
            let config = EngineConfig::new(order)
                .with_kernel(kernel)
                .with_block_size(bs);
            let mut engine = Engine::new(mesh, Acoustic, config);
            if i == 0 {
                auto_pick = auto_block_size(kernel.footprint_bytes(&engine.plan));
            }
            engine.set_initial(|x, q| {
                wave.evaluate(x, 0.0, q);
                Acoustic::set_params(q, 1.0, 1.0);
            });
            let dt = engine.max_dt();
            engine.step(dt); // warm-up: scratch allocation, page faults
            let start = Instant::now();
            for _ in 0..steps {
                engine.step(dt);
            }
            let us_per_cell = start.elapsed().as_secs_f64() * 1e6 / (steps as f64 * cells as f64);
            let mark = if bs == auto_pick { "*" } else { " " };
            print!(" {us_per_cell:>8.2}{mark}");
        }
        println!("   auto={auto_pick}");
    }
}
