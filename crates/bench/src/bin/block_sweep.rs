//! Step time vs predictor block size — the measurement behind the
//! cell-block pipeline, and the validation harness of the plan-time
//! tuner.
//!
//! For every registered kernel, drives a full acoustic engine across a
//! sweep of block sizes (via [`aderdg_bench::block_sweep`]) and prints
//! microseconds per cell per step, the static footprint-heuristic pick
//! (`s`) and the model tuner's pick (`*`). Kernels with a real block
//! implementation (generic, aosoa_splitck) amortize operator loads with
//! growing blocks until the block working set outgrows L2; kernels on the
//! per-cell fallback should be flat.
//!
//! **Compare mode** (`ADERDG_BLOCK_COMPARE=1`): additionally prints the
//! tuner's predicted cycles per cell next to the measured times and
//! checks, for each kernel with a block access model, that the
//! model-chosen block size lands on the measured-optimal plateau (within
//! 15 % of the fastest sweep point) — the acceptance gate of the
//! model-driven tuner.
//!
//! Environment: `ADERDG_BLOCK_ORDER` (default 5) sets the scheme order,
//! `ADERDG_BLOCK_CELLS` (default 6) the cells per mesh dimension,
//! `ADERDG_THREADS` caps the cell-loop parallelism (1 recommended for
//! clean per-cell timings).

use aderdg_bench::block_sweep::{plateau, sweep_kernel};
use aderdg_bench::env_usize;
use aderdg_core::tune::{best_predicted_block_size, model_block_candidates, BLOCK_CANDIDATES};
use aderdg_core::{auto_block_size, Engine, EngineConfig, KernelRegistry, StpConfig, StpPlan};
use aderdg_mesh::StructuredMesh;
use aderdg_pde::{Acoustic, LinearPde};

fn main() {
    let order = env_usize("ADERDG_BLOCK_ORDER", 5);
    let cells_per_dim = env_usize("ADERDG_BLOCK_CELLS", 6);
    let compare = std::env::var("ADERDG_BLOCK_COMPARE").is_ok_and(|v| v == "1");
    let steps = 3;
    let block_sizes = BLOCK_CANDIDATES;
    let m = Acoustic.num_quantities();
    let plan = StpPlan::new(StpConfig::new(order, m), [1.0 / cells_per_dim as f64; 3]);

    println!("=== Step time vs block size (acoustic, order {order}, {cells_per_dim}^3 cells) ===",);
    print!("{:>16}", "kernel");
    for bs in block_sizes {
        print!(" {bs:>9}");
    }
    println!("   (us/cell/step; s = static heuristic, * = model tuner)");

    let mut all_on_plateau = true;
    for kernel in KernelRegistry::global().kernels() {
        let static_pick = auto_block_size(kernel.footprint_bytes(&plan));
        let candidates = model_block_candidates(&plan, kernel.name(), Acoustic.has_ncp());
        let model_pick = candidates
            .as_ref()
            .map(|cands| best_predicted_block_size(cands));

        let points = sweep_kernel(kernel, order, cells_per_dim, &block_sizes, steps);
        print!("{:>16}", kernel.name());
        for p in &points {
            let mark = match (
                p.block_size == static_pick,
                Some(p.block_size) == model_pick,
            ) {
                (_, true) => "*",
                (true, false) => "s",
                _ => " ",
            };
            print!(" {:>8.2}{mark}", p.us_per_cell);
        }
        match model_pick {
            Some(b) => println!("   static={static_pick} model={b}"),
            None => println!("   static={static_pick} model=- (per-cell fallback)"),
        }

        if compare {
            if let Some(cands) = &candidates {
                print!("{:>16}", "pred cyc/cell");
                for c in cands {
                    print!(" {:>9.0}", c.predicted_cycles_per_cell);
                }
                println!();
                let flat = plateau(&points, 1.15);
                let pick = model_pick.expect("candidates imply a pick");
                let ok = flat.contains(&pick);
                all_on_plateau &= ok;
                println!(
                    "{:>16} measured plateau (<=15%): {:?} -> model pick {} {}",
                    "",
                    flat,
                    pick,
                    if ok { "ON PLATEAU" } else { "OFF PLATEAU" }
                );
            }
        }
    }

    if compare {
        // One default-config engine per blocked kernel prints the full
        // tuner report the engine actually acts on.
        for name in ["generic", "aosoa_splitck"] {
            let kernel = KernelRegistry::global().resolve(name).expect("builtin");
            let config = EngineConfig::new(order).with_kernel(kernel);
            let engine = Engine::new(StructuredMesh::unit_cube(2), Acoustic, config);
            print!("{}", engine.tune_report());
        }
        println!(
            "\ncompare verdict: model picks {} the measured plateau",
            if all_on_plateau { "ON" } else { "OFF" }
        );
        if !all_on_plateau {
            std::process::exit(1);
        }
    }
}
