//! Figure 6: available performance and memory-stall fraction of LoG vs
//! SplitCK, orders 4..11 (paper Sec. IV-C).
//!
//! Expected shape (paper): SplitCK's stall ratio starts lower than LoG's
//! and decreases steadily with order, while LoG's plateaus ≥ 41 % and even
//! rises after order 9; SplitCK's performance keeps growing with order.

use aderdg_bench::{calibrated_peak_gflops, measure_stp, paper_orders, print_header, print_row};
use aderdg_core::KernelVariant;
use aderdg_tensor::SimdWidth;

fn main() {
    println!(
        "calibrated host peak: {:.2} GFlop/s (single core)",
        calibrated_peak_gflops()
    );
    print_header("Fig. 6 — LoG vs SplitCK, elastic m = 21");
    for order in paper_orders() {
        let log = measure_stp(KernelVariant::LoG, order, SimdWidth::W8, 4, 5);
        let split = measure_stp(KernelVariant::SplitCk, order, SimdWidth::W8, 4, 5);
        print_row(&log);
        print_row(&split);
    }
    println!("\npaper: SplitCK stalls fall monotonically; LoG stalls plateau >= 41%");
}
