//! Figure 10: available performance and memory-stall fraction of all four
//! kernel variants, orders 4..11 (paper Sec. VI-B).
//!
//! Expected shape (paper): generic plateaus ≈ 3.8 %; LoG constrained by
//! stalls from order 6; both SplitCK variants keep improving with order,
//! AoSoA SplitCK on top (22.5 % at order 11 on SuperMUC-NG — a 6× speedup
//! over generic).

use aderdg_bench::{calibrated_peak_gflops, measure_stp, paper_orders, print_header, print_row};
use aderdg_core::KernelVariant;
use aderdg_tensor::SimdWidth;

fn main() {
    println!(
        "calibrated host peak: {:.2} GFlop/s (single core)",
        calibrated_peak_gflops()
    );
    print_header("Fig. 10 — all four STP variants, elastic m = 21");
    let mut by_order = Vec::new();
    for order in paper_orders() {
        let mut row = Vec::new();
        for variant in KernelVariant::ALL {
            let m = measure_stp(variant, order, SimdWidth::W8, 4, 5);
            print_row(&m);
            row.push(m);
        }
        by_order.push(row);
    }
    println!("\n{:>6} {:>26}", "order", "AoSoA SplitCK vs generic");
    for row in &by_order {
        let speedup = row[0].seconds_per_cell / row[3].seconds_per_cell;
        println!("{:>6} {speedup:>25.2}x", row[0].order);
    }
    println!("\npaper: ~6x at order 11; SplitCK variants keep growing with order");
}
