//! `step_scaling` — engine step time of the barrier vs the sharded
//! pipeline across worker-thread counts, and of the persistent worker
//! pool vs the per-call `std::thread::scope` fallback.
//!
//! The sharded pipeline halves the interior Riemann solves and removes
//! the global predictor→corrector barrier, so it should be no slower at
//! one thread and faster once several workers can overlap a shard's face
//! sweep with its neighbours' predictors. The persistent pool removes
//! the per-`step` thread spawn/join cost, which dominates on small
//! meshes at high thread counts. This binary prints both comparisons,
//! per thread count, and appends a `BENCH_gemm.json`-style point per
//! thread count recording the pool comparison.
//!
//! A third section compares `stepping = global` against clustered local
//! time stepping on the dt-heterogeneous `acoustic_layered` workload
//! (10:1 wave-speed contrast): the stiff layer forces the global CFL dt
//! onto every cell, while LTS advances the slow bulk at up to 8× the
//! base dt and only pays sub-window face corrections at the cluster
//! boundary. Costs are reported per unit of *simulated* time so the two
//! schedules are directly comparable, and each point lands in the same
//! output file with `kind = "lts"`.
//!
//! Environment knobs:
//!
//! * `ADERDG_ORDER` — scheme order (default 5)
//! * `ADERDG_CELLS` — cells per dimension (default 6)
//! * `ADERDG_STEPS` — timed steps per configuration (default 5)
//! * `ADERDG_SCALING_THREADS` — comma-separated thread counts
//!   (default `1,2,4,8`)
//! * `ADERDG_BENCH_OUT` — pool-comparison point file
//!   (default `BENCH_pool.json`)
//! * `ADERDG_SMOKE=1` — tiny configuration for CI smoke runs (order 3,
//!   3³ cells, 2 steps, threads 1,2)

use aderdg_bench::env_usize;
use aderdg_bench::points::{append_point, JsonPoint};
use aderdg_core::par::PoolMode;
use aderdg_core::{par, Engine, EngineConfig, PipelineMode, SteppingMode, TuningMode};
use aderdg_mesh::{BoundaryKind, StructuredMesh};
use aderdg_pde::{Acoustic, AcousticPlaneWave, ExactSolution};
use std::path::PathBuf;
use std::time::Instant;

/// Median step time in microseconds per cell.
fn measure(pipeline: PipelineMode, order: usize, cells_per_dim: usize, steps: usize) -> f64 {
    let wave = AcousticPlaneWave {
        direction: [1.0, 0.0, 0.0],
        amplitude: 1.0,
        wavenumber: 1.0,
        rho: 1.0,
        bulk: 1.0,
    };
    let mesh = StructuredMesh::unit_cube(cells_per_dim);
    let cells = mesh.num_cells();
    let config = EngineConfig::new(order)
        .with_tuning(TuningMode::Static)
        .with_pipeline(pipeline);
    let mut engine = Engine::new(mesh, Acoustic, config);
    engine.set_initial(|x, q| {
        wave.evaluate(x, 0.0, q);
        Acoustic::set_params(q, 1.0, 1.0);
    });
    let dt = engine.max_dt();
    engine.step(dt); // warm-up: scratch allocation, page faults
    let mut times = Vec::with_capacity(steps);
    for _ in 0..steps {
        let t0 = Instant::now();
        engine.step(dt);
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(f64::total_cmp);
    times[times.len() / 2] * 1e6 / cells as f64
}

/// Median step cost in microseconds per unit of *simulated* time on the
/// layered 10:1 wave-speed contrast (the `acoustic_layered` scenario's
/// medium). Each scheme steps at its own stable dt — the global path at
/// the stiff layer's CFL limit, LTS at the macro dt spanning all
/// clusters — so dividing wall time by simulated time compares the two
/// schedules doing the same physical work.
fn measure_layered(stepping: SteppingMode, order: usize, dims: [usize; 3], steps: usize) -> f64 {
    let mesh = StructuredMesh::new(dims, [0.0; 3], [1.0; 3], [BoundaryKind::Reflective; 3]);
    let config = EngineConfig::new(order)
        .with_tuning(TuningMode::Static)
        .with_stepping(stepping);
    let mut engine = Engine::new(mesh, Acoustic, config);
    engine.set_initial(|x, q| {
        q.fill(0.0);
        let r2: f64 = x.iter().map(|&c| (c - 0.6) * (c - 0.6)).sum();
        q[0] = (-r2 / (2.0 * 0.1 * 0.1)).exp();
        // Stiff layer below x = 0.25: sound speed 10 vs 1.
        let bulk = if x[0] < 0.25 { 100.0 } else { 1.0 };
        Acoustic::set_params(q, 1.0, bulk);
    });
    let dt = engine.max_dt() * 0.9;
    engine.step(dt); // warm-up: scratch allocation, cluster build
    let mut times = Vec::with_capacity(steps);
    for _ in 0..steps {
        let t0 = Instant::now();
        engine.step(dt);
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(f64::total_cmp);
    times[times.len() / 2] * 1e6 / dt
}

fn main() {
    let smoke = std::env::var("ADERDG_SMOKE").is_ok_and(|v| v == "1");
    let (order, cells_per_dim, steps, threads) = if smoke {
        (3, 3, 2, vec![1, 2])
    } else {
        let threads = std::env::var("ADERDG_SCALING_THREADS")
            .unwrap_or_else(|_| "1,2,4,8".into())
            .split(',')
            .filter_map(|t| t.trim().parse().ok())
            .collect();
        (
            env_usize("ADERDG_ORDER", 5),
            env_usize("ADERDG_CELLS", 6),
            env_usize("ADERDG_STEPS", 5),
            threads,
        )
    };
    let cells = cells_per_dim * cells_per_dim * cells_per_dim;

    println!("\n=== step_scaling: barrier vs sharded pipeline ===");
    println!("order {order}, {cells} cells ({cells_per_dim}^3), median of {steps} steps");
    println!(
        "{:>8} {:>16} {:>16} {:>10}",
        "threads", "barrier µs/cell", "sharded µs/cell", "speedup"
    );
    for &t in &threads {
        par::set_num_threads(t);
        let barrier = measure(PipelineMode::Barrier, order, cells_per_dim, steps);
        let sharded = measure(PipelineMode::Sharded, order, cells_per_dim, steps);
        println!(
            "{:>8} {:>16.3} {:>16.3} {:>9.2}x",
            t,
            barrier,
            sharded,
            barrier / sharded
        );
    }

    // Pool-mode comparison: the same sharded step with the per-call
    // `std::thread::scope` fallback vs the persistent work-stealing pool.
    // The gap is pure scheduling overhead — spawn/join plus the central
    // ready-queue lock — so it is widest on small meshes at high thread
    // counts, exactly where `ADERDG_SMOKE` and the default config sit.
    let out: PathBuf = std::env::var("ADERDG_BENCH_OUT")
        .unwrap_or_else(|_| "BENCH_pool.json".into())
        .into();
    println!("\n=== step_scaling: scoped threads vs persistent pool (sharded) ===");
    println!(
        "{:>8} {:>16} {:>16} {:>10}",
        "threads", "scoped µs/cell", "pooled µs/cell", "speedup"
    );
    for &t in &threads {
        par::set_num_threads(t);
        par::set_pool_mode(PoolMode::Scoped);
        let scoped = measure(PipelineMode::Sharded, order, cells_per_dim, steps);
        par::set_pool_mode(PoolMode::Persistent);
        let pooled = measure(PipelineMode::Sharded, order, cells_per_dim, steps);
        println!(
            "{:>8} {:>16.3} {:>16.3} {:>9.2}x",
            t,
            scoped,
            pooled,
            scoped / pooled
        );
        let point = JsonPoint::new()
            .str("kind", "pool")
            .str("pipeline", "sharded")
            .int("order", order)
            .int("cells", cells)
            .int("steps", steps)
            .int("threads", t)
            .int("smoke", usize::from(smoke))
            .num("scoped_us_per_cell", scoped)
            .num("pooled_us_per_cell", pooled)
            .num("speedup", scoped / pooled)
            .finish();
        append_point(&out, &point).expect("write pool bench point");
    }
    println!("pool points -> {}", out.display());

    // Clustered LTS vs global stepping on the 10:1 layered medium. The
    // layer occupies the first quarter of the x extent, so most cells sit
    // in coarse-dt clusters and the win tracks the dt-histogram, not the
    // thread count — measured per thread count anyway for the record.
    let lts_dims = [8, cells_per_dim, cells_per_dim];
    let lts_cells = lts_dims.iter().product::<usize>();
    println!("\n=== step_scaling: global vs clustered LTS (acoustic_layered medium) ===");
    println!(
        "order {order}, {lts_cells} cells ({}x{}x{}), median of {steps} steps",
        lts_dims[0], lts_dims[1], lts_dims[2]
    );
    println!(
        "{:>8} {:>16} {:>16} {:>10}",
        "threads", "global µs/t", "lts µs/t", "speedup"
    );
    for &t in &threads {
        par::set_num_threads(t);
        let global = measure_layered(SteppingMode::Global, order, lts_dims, steps);
        let lts = measure_layered(SteppingMode::Lts, order, lts_dims, steps);
        println!(
            "{:>8} {:>16.1} {:>16.1} {:>9.2}x",
            t,
            global,
            lts,
            global / lts
        );
        let point = JsonPoint::new()
            .str("kind", "lts")
            .str("scenario", "acoustic_layered")
            .int("order", order)
            .int("cells", lts_cells)
            .int("steps", steps)
            .int("threads", t)
            .int("smoke", usize::from(smoke))
            .num("global_us_per_time", global)
            .num("lts_us_per_time", lts)
            .num("speedup", global / lts)
            .finish();
        append_point(&out, &point).expect("write lts bench point");
    }
    println!("lts points -> {}", out.display());
}
