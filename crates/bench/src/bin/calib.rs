//! Calibration helper: raw cache-simulator statistics per variant/order,
//! used to pick the MachineModel parameters (documented in DESIGN.md §6).

use aderdg_bench::M_ELASTIC;
use aderdg_core::mix::{stp_pack_counts, stp_useful_flops, UserFunctionCost};
use aderdg_core::traces::trace_batch;
use aderdg_core::{KernelVariant, StpConfig, StpPlan};
use aderdg_perf::{CacheSim, MachineModel};

fn main() {
    let machine = MachineModel::skylake_sp();
    println!(
        "{:>6} {:>16} {:>10} {:>10} {:>10} {:>10} {:>12} {:>8}",
        "order", "variant", "l1acc", "l2hit", "l3hit", "dram", "flops", "stall%"
    );
    for order in [4usize, 6, 8, 10, 11] {
        let plan = StpPlan::new(StpConfig::new(order, M_ELASTIC), [1.0; 3]);
        for variant in KernelVariant::ALL {
            let mut sim = CacheSim::skylake_sp();
            trace_batch(&plan, variant, false, 1, &mut sim);
            sim.reset_stats();
            let cells = 4;
            trace_batch(&plan, variant, false, cells, &mut sim);
            let s = sim.stats();
            let flops = stp_useful_flops(&plan, UserFunctionCost::elastic()) * cells as u64;
            let mix =
                stp_pack_counts(&plan, variant, UserFunctionCost::elastic()).scale(cells as u64);
            println!(
                "{:>6} {:>16} {:>10} {:>10} {:>10} {:>10} {:>12} {:>7.1}%",
                order,
                variant.name(),
                s.l1.accesses(),
                s.l2.hits,
                s.l3.hits,
                s.dram,
                flops,
                machine.stall_fraction_mix(&s, &mix) * 100.0
            );
        }
    }
}
