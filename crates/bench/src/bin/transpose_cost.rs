//! Transpose-overhead measurement (paper Sec. V-B): the AoS↔AoSoA entry
//! and exit transposes of the AoSoA kernel are claimed to cost little
//! compared to the kernel itself, and far less than on-the-fly AoS↔SoA
//! transposes around every user-function call (Sec. V-A, the rejected
//! alternative).

use aderdg_bench::{elastic_state, paper_orders, M_ELASTIC};
use aderdg_core::kernels::{StpInputs, StpOutputs};
use aderdg_core::KernelRegistry;
use aderdg_core::{StpConfig, StpPlan};
use aderdg_pde::Elastic;
use aderdg_tensor::{aos_to_aosoa, aosoa_to_aos, SimdWidth};
use std::time::Instant;

fn time_it(mut f: impl FnMut(), reps: usize) -> f64 {
    f(); // warm up
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

fn main() {
    println!("=== AoS<->AoSoA transpose cost vs kernel cost (Sec. V-B) ===");
    println!(
        "{:>6} {:>14} {:>14} {:>12} {:>22}",
        "order", "transpose", "AoSoA kernel", "share", "on-the-fly estimate"
    );
    for order in paper_orders() {
        let plan = StpPlan::new(
            StpConfig::new(order, M_ELASTIC).with_width(SimdWidth::W8),
            [0.1; 3],
        );
        let q0 = elastic_state(&plan, 7);
        let mut hybrid = vec![0.0; plan.aosoa.len()];
        let mut back = vec![0.0; plan.aos.len()];

        // One entry + one exit transpose (what the kernel actually adds).
        let t_trans = time_it(
            || {
                aos_to_aosoa(&q0, &plan.aos, &mut hybrid, &plan.aosoa);
                aosoa_to_aos(&hybrid, &plan.aosoa, &mut back, &plan.aos);
            },
            20,
        );

        let pde = Elastic;
        let kernel = KernelRegistry::global()
            .resolve("aosoa_splitck")
            .expect("builtin kernel");
        let mut scratch = kernel.make_scratch(&plan);
        let mut out = StpOutputs::new(&plan);
        let t_kernel = time_it(
            || {
                kernel.run(
                    &plan,
                    &pde,
                    scratch.as_mut(),
                    &StpInputs {
                        q0: &q0,
                        dt: 1e-3,
                        source: None,
                    },
                    &mut out,
                );
            },
            10,
        );

        // The rejected Sec. V-A alternative: a transpose pair around every
        // user-function sweep — 3(N+1) flux sweeps per invocation.
        let on_the_fly = t_trans * 3.0 * (order as f64 + 1.0);
        println!(
            "{order:>6} {:>11.1} µs {:>11.1} µs {:>11.1}% {:>19.1} µs",
            t_trans * 1e6,
            t_kernel * 1e6,
            t_trans / t_kernel * 100.0,
            on_the_fly * 1e6
        );
    }
    println!("\npaper: entry/exit transposes are minor; per-call transposes are not");
}
