//! Footprint table (paper Sec. IV-A, text): temporary storage of the
//! generic/LoG algorithm vs SplitCK across orders, the analytic formulas
//! against the actually-allocated scratch, and the L2-overflow order.

use aderdg_bench::M_ELASTIC;
use aderdg_core::{KernelVariant, StpConfig, StpPlan};
use aderdg_perf::footprint;

fn main() {
    println!("=== Temporary-memory footprint, m = {M_ELASTIC} (and the paper's m = 25) ===");
    println!(
        "{:>6} {:>16} {:>16} {:>16} {:>16} {:>10}",
        "order", "generic(formula)", "generic(actual)", "split(formula)", "split(actual)", "ratio"
    );
    for order in 2..=12 {
        let plan = StpPlan::new(StpConfig::new(order, M_ELASTIC), [1.0; 3]);
        let gen_actual = KernelVariant::Generic.kernel().footprint_bytes(&plan);
        let split_actual = KernelVariant::SplitCk.kernel().footprint_bytes(&plan);
        let gen_f = footprint::generic_temporaries_bytes(order, M_ELASTIC);
        let split_f = footprint::splitck_temporaries_bytes(order, M_ELASTIC);
        println!(
            "{:>6} {:>13.0} KiB {:>13.0} KiB {:>13.0} KiB {:>13.0} KiB {:>9.1}x",
            order,
            gen_f as f64 / 1024.0,
            gen_actual as f64 / 1024.0,
            split_f as f64 / 1024.0,
            split_actual as f64 / 1024.0,
            gen_actual as f64 / split_actual as f64
        );
    }
    for m in [M_ELASTIC, 25] {
        match footprint::l2_overflow_order(m, 1024 * 1024) {
            Some(n) => {
                println!("\nm = {m}: generic temporaries exceed the 1 MiB L2 from order N = {n}")
            }
            None => println!("\nm = {m}: no overflow up to order 32"),
        }
    }
    println!("paper (m = 25): \"the 1 MB limit will be exceeded as soon as N = 6\"");
}
