//! Figure 9: SIMD instruction-mix (fraction of FLOPs executed scalar /
//! 128-bit / 256-bit / 512-bit) for the four kernel variants at orders
//! 4..11 (paper Sec. VI-A).
//!
//! Expected shape (paper): generic mostly scalar; LoG and SplitCK > 80 %
//! packed with ≈ 10 % scalar (pointwise user functions); AoSoA SplitCK
//! 2–4 % scalar (vectorized user functions).

use aderdg_bench::{paper_orders, M_ELASTIC};
use aderdg_core::mix::{full_step_pack_counts, UserFunctionCost};
use aderdg_core::{KernelVariant, StpConfig, StpPlan};
use aderdg_tensor::SimdWidth;

fn main() {
    println!("=== Fig. 9 — instruction mix (fraction of flops per pack width) ===");
    println!("(whole application per cell-step: predictor + corrector + Riemann)");
    println!(
        "{:>6} {:>18} {:>9} {:>9} {:>9} {:>9}",
        "order", "variant", "scalar", "128-bit", "256-bit", "512-bit"
    );
    let cost = UserFunctionCost::elastic();
    for order in paper_orders() {
        let plan = StpPlan::new(
            StpConfig::new(order, M_ELASTIC).with_width(SimdWidth::W8),
            [1.0; 3],
        );
        for variant in KernelVariant::ALL {
            let f = full_step_pack_counts(&plan, variant, cost).fractions();
            println!(
                "{:>6} {:>18} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}%",
                order,
                variant.name(),
                f[0] * 100.0,
                f[1] * 100.0,
                f[2] * 100.0,
                f[3] * 100.0
            );
        }
    }
    println!("\npaper: generic mostly scalar; LoG/SplitCK ~10% scalar; AoSoA 2-4% scalar");
}
