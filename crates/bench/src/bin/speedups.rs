//! Headline speedups quoted in the paper's text (Sec. III-D, VI-B):
//! LoG AVX-512 over AVX2 (expected ~1.23–1.30× rather than ~2×, because
//! of memory stalls) and AoSoA SplitCK over generic (expected ~6× at
//! order 11 on the paper's hardware).

use aderdg_bench::{measure_stp, paper_orders};
use aderdg_core::KernelVariant;
use aderdg_tensor::SimdWidth;

fn main() {
    println!("=== Headline speedups (elastic m = 21) ===");
    println!(
        "{:>6} {:>20} {:>20} {:>22}",
        "order", "LoG 512/256 speedup", "SplitCK vs LoG", "AoSoA vs generic"
    );
    for order in paper_orders() {
        let gen = measure_stp(KernelVariant::Generic, order, SimdWidth::W8, 4, 5);
        let log512 = measure_stp(KernelVariant::LoG, order, SimdWidth::W8, 4, 5);
        let log256 = measure_stp(KernelVariant::LoG, order, SimdWidth::W4, 4, 5);
        let split = measure_stp(KernelVariant::SplitCk, order, SimdWidth::W8, 4, 5);
        let hybrid = measure_stp(KernelVariant::AoSoASplitCk, order, SimdWidth::W8, 4, 5);
        println!(
            "{order:>6} {:>19.2}x {:>19.2}x {:>21.2}x",
            log256.seconds_per_cell / log512.seconds_per_cell,
            log512.seconds_per_cell / split.seconds_per_cell,
            gen.seconds_per_cell / hybrid.seconds_per_cell
        );
    }
    println!("\npaper: LoG 512b/256b 1.23-1.30x; AoSoA vs generic ~6x at order 11");
}
