//! Comparable GEMM-backend benchmark points → `BENCH_gemm.json`.
//!
//! Forces each GEMM backend in-process via [`aderdg_gemm::BACKEND_ENV`]
//! and appends flat JSON points (via [`aderdg_bench::points`]) so future
//! sessions can add comparable numbers on other hardware:
//!
//! * raw batched GEMM throughput on the plan's AoSoA shapes — the fused
//!   x-derivative (`C = A·Dᵀ`, shared B, row-fused) and the shared-
//!   operator slab (`C += D·B`) — for the acoustic (m = 6) and elastic
//!   (m = 21) quantity counts;
//! * the best `block_sweep` point of `aosoa_splitck` and `generic`
//!   (acoustic engine, order 5, 6³ cells);
//! * per-cell predictor time of `aosoa_splitck` on the elastic m = 21
//!   stress workload;
//! * the probe ranking on the fused shape (what `tuning = probe` sees);
//! * packed-vs-autovec speedup ratios on the engine metrics — the
//!   numbers the PR acceptance gate reads.
//!
//! Environment: `ADERDG_BENCH_BACKENDS` (csv) overrides the measured
//! backends (default: widest supported autovec + widest supported
//! packed), `ADERDG_BENCH_OUT` the output path (default
//! `BENCH_gemm.json`), `ADERDG_BENCH_ORDER` the scheme order,
//! `ADERDG_SMOKE=1` shrinks every size for CI.

use aderdg_bench::block_sweep::sweep_kernel;
use aderdg_bench::points::{append_point, JsonPoint};
use aderdg_bench::{elastic_state, env_usize, M_ELASTIC};
use aderdg_core::kernels::{StpInputs, StpOutputs};
use aderdg_core::{KernelRegistry, StpConfig, StpPlan};
use aderdg_gemm::{backend_by_name, rank_backends_batched, Gemm, GemmBatch, GemmSpec, Isa};
use aderdg_pde::Elastic;
use std::path::PathBuf;
use std::time::Instant;

/// Sizing knobs, shrunk under `ADERDG_SMOKE=1`.
struct Sizes {
    order: usize,
    cells_per_dim: usize,
    sweep_steps: usize,
    gemm_iters: usize,
    stp_cells: usize,
    stp_reps: usize,
    smoke: bool,
}

impl Sizes {
    fn from_env() -> Self {
        let smoke = std::env::var("ADERDG_SMOKE").is_ok_and(|v| v == "1");
        let mut sz = if smoke {
            Self {
                order: 4,
                cells_per_dim: 3,
                sweep_steps: 1,
                gemm_iters: 20,
                stp_cells: 2,
                stp_reps: 2,
                smoke,
            }
        } else {
            Self {
                order: 5,
                cells_per_dim: 6,
                sweep_steps: 3,
                gemm_iters: 400,
                stp_cells: 8,
                stp_reps: 7,
                smoke,
            }
        };
        sz.order = env_usize("ADERDG_BENCH_ORDER", sz.order);
        sz
    }
}

/// The default measured pair: widest supported autovec backend and
/// widest supported packed backend.
fn default_backends() -> Vec<String> {
    let pick = |names: &[&str]| {
        names
            .iter()
            .find(|n| backend_by_name(n).is_some_and(|b| b.supported()))
            .map(|n| n.to_string())
    };
    [
        pick(&["avx512", "avx2", "baseline"]),
        pick(&["packed_avx512", "packed_avx2", "packed_baseline"]),
    ]
    .into_iter()
    .flatten()
    .collect()
}

/// Median-of-reps seconds for one run of `body`.
fn time_median(reps: usize, mut body: impl FnMut()) -> f64 {
    body(); // warm-up
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t0 = Instant::now();
            body();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Throughput of one batched plan shape on the forced backend, in
/// GFlop/s (the backend is re-selected per call, honouring the env).
fn gemm_gflops(spec: GemmSpec, batch: GemmBatch, iters: usize) -> f64 {
    let gemm = Gemm::new(spec);
    let (la, lb, lc) = batch.required_lens(&spec);
    let mut rng = aderdg_tensor::Lcg::new(0xBE9C_0DE5);
    let a = rng.vec(la.max(1), -1.0, 1.0);
    let b = rng.vec(lb.max(1), -1.0, 1.0);
    let mut c = vec![0.0; lc.max(1)];
    let secs = time_median(5, || {
        for _ in 0..iters {
            gemm.execute_batched(&batch, &a, &b, &mut c);
        }
    });
    let flops = (2 * spec.m * spec.n * spec.k * batch.count * iters) as f64;
    flops / secs / 1e9
}

/// Per-cell predictor seconds of `aosoa_splitck` on the elastic m = 21
/// workload (the `elastic_stress` configuration, engine loop stripped).
fn elastic_stp_us_per_cell(order: usize, cells: usize, reps: usize) -> f64 {
    let plan = StpPlan::new(StpConfig::new(order, M_ELASTIC), [0.1; 3]);
    let kernel = KernelRegistry::global()
        .resolve("aosoa_splitck")
        .expect("builtin kernel");
    let pde = Elastic;
    let states: Vec<Vec<f64>> = (0..cells)
        .map(|c| elastic_state(&plan, 0x51E55 + c as u64))
        .collect();
    let mut scratch = kernel.make_scratch(&plan);
    let mut out = StpOutputs::new(&plan);
    let secs = time_median(reps, || {
        for q0 in &states {
            kernel.run(
                &plan,
                &pde,
                scratch.as_mut(),
                &StpInputs {
                    q0,
                    dt: 1e-3,
                    source: None,
                },
                &mut out,
            );
        }
    });
    secs / cells as f64 * 1e6
}

/// The fused AoSoA x-derivative shape at `order` for `m_q` quantities —
/// the spec `StpPlan` builds for `gemm_aosoa[0]` (n_pad = 8 SIMD lanes).
fn fused_shape(order: usize, m_q: usize) -> (GemmSpec, GemmBatch) {
    let nodes = order + 1;
    let spec = GemmSpec {
        m: m_q,
        n: 8,
        k: nodes,
        lda: 8,
        ldb: 8,
        ldc: 8,
        alpha: 1.0,
        beta: 0.0,
    };
    let stride = m_q * 8;
    (spec, GemmBatch::shared_b(4 * nodes * nodes, stride, stride))
}

/// The shared-operator AoSoA slab shape (`gemm_aosoa[2]`-like): one
/// small D applied to `nodes` big row-blocks.
fn slab_shape(order: usize, m_q: usize) -> (GemmSpec, GemmBatch) {
    let nodes = order + 1;
    let spec = GemmSpec::dense(nodes, nodes * m_q * 8, nodes).with_scale(1.0, 1.0);
    let (_, rb, rc) = spec.required_lens();
    (spec, GemmBatch::shared_a(nodes, rb, rc))
}

fn main() {
    let sz = Sizes::from_env();
    let out: PathBuf = std::env::var("ADERDG_BENCH_OUT")
        .unwrap_or_else(|_| "BENCH_gemm.json".into())
        .into();
    let backends: Vec<String> = match std::env::var("ADERDG_BENCH_BACKENDS") {
        Ok(csv) => csv.split(',').map(|s| s.trim().to_string()).collect(),
        Err(_) => default_backends(),
    };
    let emit = |p: &JsonPoint| {
        let rendered = p.finish();
        println!("{rendered}");
        append_point(&out, &rendered).expect("write bench point");
    };
    let base = || {
        JsonPoint::new()
            .int("order", sz.order)
            .int("smoke", usize::from(sz.smoke))
    };

    println!(
        "=== bench_points: order {}, backends [{}] -> {} ===",
        sz.order,
        backends.join(", "),
        out.display()
    );

    // (backend, metric, value) records, for the ratio points at the end.
    let mut engine_metrics: Vec<(String, String, f64)> = Vec::new();

    for name in &backends {
        if !backend_by_name(name).is_some_and(|b| b.supported()) {
            eprintln!("skipping unsupported backend {name}");
            continue;
        }
        std::env::set_var(aderdg_gemm::BACKEND_ENV, name);

        // Raw GEMM throughput on the plan shapes.
        for (system, m_q) in [("acoustic", 6), ("elastic", M_ELASTIC)] {
            for (case, (spec, batch)) in [
                ("aosoa_d0_fused", fused_shape(sz.order, m_q)),
                ("aosoa_shared_op", slab_shape(sz.order, m_q)),
            ] {
                let gflops = gemm_gflops(spec, batch, sz.gemm_iters);
                emit(
                    &base()
                        .str("kind", "gemm")
                        .str("backend", name)
                        .str("system", system)
                        .str("case", case)
                        .int("m", spec.m)
                        .int("n", spec.n)
                        .int("k", spec.k)
                        .int("count", batch.count)
                        .num("gflops", gflops),
                );
            }
        }

        // Engine block sweep: best point per blocked kernel.
        for kernel_name in ["aosoa_splitck", "generic"] {
            let kernel = KernelRegistry::global()
                .resolve(kernel_name)
                .expect("builtin kernel");
            let points = sweep_kernel(
                kernel,
                sz.order,
                sz.cells_per_dim,
                &[8, 16, 32],
                sz.sweep_steps,
            );
            let best = points
                .iter()
                .min_by(|x, y| x.us_per_cell.total_cmp(&y.us_per_cell))
                .expect("non-empty sweep");
            emit(
                &base()
                    .str("kind", "block_sweep")
                    .str("backend", name)
                    .str("kernel", kernel_name)
                    .int("cells_per_dim", sz.cells_per_dim)
                    .int("best_block", best.block_size)
                    .num("us_per_cell", best.us_per_cell),
            );
            engine_metrics.push((
                name.clone(),
                format!("block_sweep:{kernel_name}"),
                best.us_per_cell,
            ));
        }

        // Elastic stress predictor time (the paper's m = 21 workload).
        let us = elastic_stp_us_per_cell(sz.order, sz.stp_cells, sz.stp_reps);
        emit(
            &base()
                .str("kind", "elastic_stp")
                .str("backend", name)
                .str("kernel", "aosoa_splitck")
                .int("m", M_ELASTIC)
                .num("us_per_cell", us),
        );
        engine_metrics.push((name.clone(), "elastic_stp".into(), us));
    }
    std::env::remove_var(aderdg_gemm::BACKEND_ENV);

    // What the probe tuner sees on the fused elastic shape: fastest
    // first — this is the selection `tuning = probe` acts on.
    let (spec, batch) = fused_shape(sz.order, M_ELASTIC);
    let ranked = rank_backends_batched(&spec, &batch, Isa::detect(), 5);
    let ranking: Vec<&str> = ranked.iter().map(|(b, _)| b.name()).collect();
    emit(
        &base()
            .str("kind", "probe_rank")
            .str("case", "aosoa_d0_fused")
            .str("system", "elastic")
            .str("ranking", &ranking.join(" > ")),
    );

    // Packed-vs-autovec speedups on the engine metrics (ratio > 1 means
    // the packed backend is faster).
    for (auto, packed) in backends
        .iter()
        .filter(|n| !n.starts_with("packed_"))
        .flat_map(|a| {
            backends
                .iter()
                .filter(|p| p.starts_with("packed_"))
                .map(move |p| (a, p))
        })
    {
        for (metric, a_val) in engine_metrics
            .iter()
            .filter(|(b, _, _)| b == auto)
            .map(|(_, m, v)| (m, v))
        {
            let Some(p_val) = engine_metrics
                .iter()
                .find(|(b, m, _)| b == packed && m == metric)
                .map(|(_, _, v)| *v)
            else {
                continue;
            };
            emit(
                &base()
                    .str("kind", "ratio")
                    .str("metric", metric)
                    .str("autovec", auto)
                    .str("packed", packed)
                    .num("autovec_us_per_cell", *a_val)
                    .num("packed_us_per_cell", p_val)
                    .num("speedup", a_val / p_val),
            );
        }
    }
}
