//! Figure 4: available performance and memory-stall fraction of the
//! generic kernel vs the LoG kernel built for AVX-512 and for AVX2,
//! orders 4..11 (paper Sec. III-D).
//!
//! Expected shape (paper): generic plateaus at a few % of peak; both LoG
//! configurations improve with order but saturate, with AVX-512 only
//! ~1.2–1.3× over AVX2 because ≥ 41 % / 34 % of pipeline slots stall on
//! memory once the temporaries exceed the L2 (order ≥ 6).

use aderdg_bench::{calibrated_peak_gflops, measure_stp, paper_orders, print_header, print_row};
use aderdg_core::KernelVariant;
use aderdg_tensor::SimdWidth;

fn main() {
    println!(
        "calibrated host peak: {:.2} GFlop/s (single core)",
        calibrated_peak_gflops()
    );
    print_header("Fig. 4 — generic vs LoG (AVX-512) vs LoG (AVX2), elastic m = 21");
    let mut speedups = Vec::new();
    for order in paper_orders() {
        let gen = measure_stp(KernelVariant::Generic, order, SimdWidth::W8, 4, 5);
        let log512 = measure_stp(KernelVariant::LoG, order, SimdWidth::W8, 4, 5);
        let log256 = measure_stp(KernelVariant::LoG, order, SimdWidth::W4, 4, 5);
        print_row(&gen);
        print_row(&log512);
        print_row(&log256);
        speedups.push((
            order,
            log256.seconds_per_cell / log512.seconds_per_cell,
            gen.seconds_per_cell / log512.seconds_per_cell,
        ));
    }
    println!(
        "\n{:>6} {:>22} {:>22}",
        "order", "LoG 512b vs 256b", "LoG 512b vs generic"
    );
    for (order, s_width, s_gen) in speedups {
        println!("{order:>6} {s_width:>21.2}x {s_gen:>21.2}x");
    }
    println!("\npaper: AVX-512 over AVX2 only 1.23–1.30x (memory stalls), not ~2x");
}
