//! Sec. V-A ablation: three ways to call the user functions in the
//! dimension-split predictor —
//!
//! 1. **SplitCK** — pointwise (scalar) user functions on AoS,
//! 2. **on-the-fly** — vectorized user functions with AoS↔SoA transposes
//!    around every call (the alternative the paper tested and rejected
//!    for cheap linear fluxes),
//! 3. **AoSoA SplitCK** — vectorized user functions on the hybrid layout
//!    (one transpose pair per kernel invocation).

use aderdg_bench::{elastic_state, paper_orders, M_ELASTIC};
use aderdg_core::kernels::{StpInputs, StpOutputs};
use aderdg_core::{KernelRegistry, StpConfig, StpPlan};
use aderdg_pde::Elastic;
use aderdg_tensor::SimdWidth;
use std::time::Instant;

fn main() {
    println!("=== Sec. V-A — user-function call strategies (elastic m = 21) ===");
    println!(
        "{:>6} {:>16} {:>16} {:>16} {:>20}",
        "order", "pointwise", "on-the-fly", "AoSoA", "on-the-fly penalty"
    );
    let pde = Elastic;
    for order in paper_orders() {
        let plan = StpPlan::new(
            StpConfig::new(order, M_ELASTIC).with_width(SimdWidth::W8),
            [0.1; 3],
        );
        let q0 = elastic_state(&plan, 3);
        let inputs = StpInputs {
            q0: &q0,
            dt: 1e-3,
            source: None,
        };
        let reps = 8;

        let time_kernel = |name: &str| -> f64 {
            let kernel = KernelRegistry::global()
                .resolve(name)
                .expect("builtin kernel");
            let mut scratch = kernel.make_scratch(&plan);
            let mut out = StpOutputs::new(&plan);
            kernel.run(&plan, &pde, scratch.as_mut(), &inputs, &mut out);
            let t0 = Instant::now();
            for _ in 0..reps {
                kernel.run(&plan, &pde, scratch.as_mut(), &inputs, &mut out);
            }
            t0.elapsed().as_secs_f64() / reps as f64
        };
        let t_split = time_kernel("splitck");
        let t_hybrid = time_kernel("aosoa_splitck");
        let t_otf = time_kernel("onthefly");

        println!(
            "{order:>6} {:>13.1} µs {:>13.1} µs {:>13.1} µs {:>19.2}x",
            t_split * 1e6,
            t_otf * 1e6,
            t_hybrid * 1e6,
            t_otf / t_split
        );
    }
    println!("\npaper: for cheap linear user functions the per-call transposes are");
    println!("not worth it — the hybrid AoSoA layout avoids them entirely");
}
