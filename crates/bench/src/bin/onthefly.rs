//! Sec. V-A ablation: three ways to call the user functions in the
//! dimension-split predictor —
//!
//! 1. **SplitCK** — pointwise (scalar) user functions on AoS,
//! 2. **on-the-fly** — vectorized user functions with AoS↔SoA transposes
//!    around every call (the alternative the paper tested and rejected
//!    for cheap linear fluxes),
//! 3. **AoSoA SplitCK** — vectorized user functions on the hybrid layout
//!    (one transpose pair per kernel invocation).

use aderdg_bench::{elastic_state, paper_orders, M_ELASTIC};
use aderdg_core::kernels::onthefly::{stp_onthefly, OnTheFlyScratch};
use aderdg_core::kernels::{run_stp, StpInputs, StpOutputs, StpScratch};
use aderdg_core::{KernelVariant, StpConfig, StpPlan};
use aderdg_pde::Elastic;
use aderdg_tensor::SimdWidth;
use std::time::Instant;

fn main() {
    println!("=== Sec. V-A — user-function call strategies (elastic m = 21) ===");
    println!(
        "{:>6} {:>16} {:>16} {:>16} {:>20}",
        "order", "pointwise", "on-the-fly", "AoSoA", "on-the-fly penalty"
    );
    let pde = Elastic;
    for order in paper_orders() {
        let plan = StpPlan::new(
            StpConfig::new(order, M_ELASTIC).with_width(SimdWidth::W8),
            [0.1; 3],
        );
        let q0 = elastic_state(&plan, 3);
        let inputs = StpInputs {
            q0: &q0,
            dt: 1e-3,
            source: None,
        };
        let reps = 8;

        let time_variant = |variant: KernelVariant| -> f64 {
            let mut scratch = StpScratch::new(variant, &plan);
            let mut out = StpOutputs::new(&plan);
            run_stp(&plan, &pde, &mut scratch, &inputs, &mut out);
            let t0 = Instant::now();
            for _ in 0..reps {
                run_stp(&plan, &pde, &mut scratch, &inputs, &mut out);
            }
            t0.elapsed().as_secs_f64() / reps as f64
        };
        let t_split = time_variant(KernelVariant::SplitCk);
        let t_hybrid = time_variant(KernelVariant::AoSoASplitCk);

        let mut scratch = OnTheFlyScratch::new(&plan);
        let mut out = StpOutputs::new(&plan);
        stp_onthefly(&plan, &pde, &mut scratch, &inputs, &mut out);
        let t0 = Instant::now();
        for _ in 0..reps {
            stp_onthefly(&plan, &pde, &mut scratch, &inputs, &mut out);
        }
        let t_otf = t0.elapsed().as_secs_f64() / reps as f64;

        println!(
            "{order:>6} {:>13.1} µs {:>13.1} µs {:>13.1} µs {:>19.2}x",
            t_split * 1e6,
            t_otf * 1e6,
            t_hybrid * 1e6,
            t_otf / t_split
        );
    }
    println!("\npaper: for cheap linear user functions the per-call transposes are");
    println!("not worth it — the hybrid AoSoA layout avoids them entirely");
}
