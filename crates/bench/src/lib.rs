//! # aderdg-bench
//!
//! Shared measurement harness for the figure-regeneration binaries and the
//! Criterion benches: elastic workload construction (the paper's m = 21
//! configuration), wall-clock kernel timing against a calibrated peak,
//! cache-simulated stall fractions, and instruction-mix evaluation.
//!
//! Every binary prints the same series the corresponding paper figure
//! plots; see DESIGN.md §5 for the experiment index.

pub mod points;

use aderdg_core::kernels::{StpInputs, StpOutputs};
use aderdg_core::mix::{stp_pack_counts, stp_useful_flops, UserFunctionCost};
use aderdg_core::traces::trace_batch;
use aderdg_core::{KernelVariant, StpConfig, StpPlan};
use aderdg_gemm::Isa;
use aderdg_pde::{Elastic, Material};
use aderdg_perf::{measure_peak_gflops, CacheSim, MachineModel, PackCounts, PerfMeasurement};
use aderdg_tensor::SimdWidth;
use std::sync::OnceLock;
use std::time::Instant;

/// Quantities of the paper's elastic benchmark.
pub const M_ELASTIC: usize = 21;

/// Parses a positive integer knob from the environment, falling back to
/// `default` when unset, unparsable or zero (shared by the bench
/// binaries' size/step knobs).
pub fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

/// Orders evaluated in the paper's figures.
pub fn paper_orders() -> Vec<usize> {
    match std::env::var("ADERDG_ORDERS") {
        Ok(s) => s.split(',').filter_map(|t| t.trim().parse().ok()).collect(),
        Err(_) => (4..=11).collect(),
    }
}

/// Host peak calibration, measured once per process (release builds).
pub fn calibrated_peak_gflops() -> f64 {
    static PEAK: OnceLock<f64> = OnceLock::new();
    *PEAK.get_or_init(|| measure_peak_gflops(200))
}

/// Builds a reproducible random elastic state (mildly curvilinear metric,
/// physical material) in the plan's padded AoS layout.
pub fn elastic_state(plan: &StpPlan, seed: u64) -> Vec<f64> {
    let mut rng = aderdg_tensor::Lcg::new(seed);
    let mut next = move || rng.unit();
    let m_pad = plan.aos.m_pad();
    let mat = Material {
        rho: 2.7,
        cp: 6.0,
        cs: 3.46,
    };
    let n = plan.n();
    let mut q = vec![0.0; plan.aos.len()];
    for k in 0..n * n * n {
        for s in 0..9 {
            q[k * m_pad + s] = next();
        }
        let mut jac = Elastic::IDENTITY_JAC;
        jac[1] = 0.05 * next();
        jac[5] = 0.05 * next();
        Elastic::set_params(&mut q[k * m_pad..k * m_pad + M_ELASTIC], mat, &jac);
    }
    q
}

/// One measured configuration of the STP kernel.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Kernel variant.
    pub variant: KernelVariant,
    /// Scheme order.
    pub order: usize,
    /// SIMD width of the plan (padding + dispatch).
    pub width: SimdWidth,
    /// Wall-clock seconds per cell (median of repetitions).
    pub seconds_per_cell: f64,
    /// Useful GFlop/s achieved.
    pub gflops: f64,
    /// Fraction of the calibrated host peak.
    pub available_fraction: f64,
    /// Modelled memory-stall fraction (Skylake-SP cache hierarchy).
    pub stall_fraction: f64,
    /// Instruction-mix model (classified executed flops).
    pub mix: PackCounts,
    /// Temporary-buffer footprint in bytes.
    pub footprint_bytes: usize,
}

/// Measures `variant` at `order` on the m = 21 elastic workload.
///
/// Wall-clock: a batch of `cells` predictor invocations on distinct input
/// states with shared scratch (the production pattern), repeated `reps`
/// times, median taken. Stalls: cache simulation of the same batch
/// pattern. Mix: analytic classification.
pub fn measure_stp(
    variant: KernelVariant,
    order: usize,
    width: SimdWidth,
    cells: usize,
    reps: usize,
) -> Measurement {
    let cfg = StpConfig::new(order, M_ELASTIC).with_width(width);
    let isa = match width {
        SimdWidth::W2 => Isa::Baseline,
        SimdWidth::W4 => Isa::Avx2,
        SimdWidth::W8 => Isa::Avx512,
    };
    let plan = StpPlan::with_isa(cfg, [0.1; 3], isa);
    let pde = Elastic;
    let cost = UserFunctionCost::elastic();

    let states: Vec<Vec<f64>> = (0..cells)
        .map(|c| elastic_state(&plan, 0x9E37 + c as u64))
        .collect();
    let kernel = variant.kernel();
    let mut scratch = kernel.make_scratch(&plan);
    let mut out = StpOutputs::new(&plan);

    // Warm-up.
    for q0 in &states {
        kernel.run(
            &plan,
            &pde,
            scratch.as_mut(),
            &StpInputs {
                q0,
                dt: 1e-3,
                source: None,
            },
            &mut out,
        );
    }
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        for q0 in &states {
            kernel.run(
                &plan,
                &pde,
                scratch.as_mut(),
                &StpInputs {
                    q0,
                    dt: 1e-3,
                    source: None,
                },
                &mut out,
            );
        }
        times.push(t0.elapsed().as_secs_f64() / cells as f64);
    }
    times.sort_by(f64::total_cmp);
    let seconds_per_cell = times[times.len() / 2];

    let useful = stp_useful_flops(&plan, cost);
    let peak = calibrated_peak_gflops();
    let perf = PerfMeasurement {
        flops: useful,
        seconds: seconds_per_cell,
        peak_gflops: peak,
    };

    // Cache-simulated stalls (warm-up cell, then measured batch), with
    // the compute denominator from the variant's instruction mix.
    let machine = MachineModel::skylake_sp();
    let mut sim = CacheSim::skylake_sp();
    trace_batch(&plan, variant, false, 1, &mut sim);
    sim.reset_stats();
    let sim_cells = cells.max(2);
    trace_batch(&plan, variant, false, sim_cells, &mut sim);
    let mix = stp_pack_counts(&plan, variant, cost);
    let stall = machine.stall_fraction_mix(&sim.stats(), &mix.scale(sim_cells as u64));

    Measurement {
        variant,
        order,
        width,
        seconds_per_cell,
        gflops: perf.gflops(),
        available_fraction: perf.available_fraction(),
        stall_fraction: stall,
        mix: stp_pack_counts(&plan, variant, cost),
        footprint_bytes: kernel.footprint_bytes(&plan),
    }
}

/// Prints the standard figure table header.
pub fn print_header(title: &str) {
    println!("\n=== {title} ===");
    println!(
        "{:>6} {:>18} {:>8} {:>12} {:>10} {:>10} {:>10}",
        "order", "variant", "width", "time/cell", "GFlop/s", "avail%", "stall%"
    );
}

/// Prints one measurement row.
pub fn print_row(m: &Measurement) {
    println!(
        "{:>6} {:>18} {:>8} {:>10.2} µs {:>10.2} {:>9.1}% {:>9.1}%",
        m.order,
        m.variant.name(),
        format!("{}b", m.width.bits()),
        m.seconds_per_cell * 1e6,
        m.gflops,
        m.available_fraction * 100.0,
        m.stall_fraction * 100.0
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_smoke() {
        let m = measure_stp(KernelVariant::SplitCk, 4, SimdWidth::W8, 2, 2);
        assert!(m.seconds_per_cell > 0.0);
        assert!(m.gflops > 0.0);
        assert!(m.stall_fraction >= 0.0 && m.stall_fraction < 1.0);
        assert!(m.mix.total() > 0);
        assert!(m.footprint_bytes > 0);
    }

    #[test]
    fn paper_orders_env_override() {
        // Default covers the paper's range.
        let o = paper_orders();
        assert!(o.contains(&4) && o.contains(&11) || std::env::var("ADERDG_ORDERS").is_ok());
    }
}

/// Engine-level block-size sweep machinery, shared by the `block_sweep`
/// binary and the tuner-validation compare mode.
pub mod block_sweep {
    use aderdg_core::kernels::StpKernel;
    use aderdg_core::{Engine, EngineConfig, TuningMode};
    use aderdg_mesh::StructuredMesh;
    use aderdg_pde::{Acoustic, AcousticPlaneWave, ExactSolution};
    use std::time::Instant;

    /// One measured sweep point.
    #[derive(Debug, Clone, Copy)]
    pub struct SweepPoint {
        /// Cells per predictor block.
        pub block_size: usize,
        /// Measured microseconds per cell per step (median-free single
        /// timing over `steps` steps, after one warm-up step).
        pub us_per_cell: f64,
    }

    /// Drives a full acoustic engine at `order` on a
    /// `cells_per_dim³` mesh once per entry of `block_sizes` and returns
    /// the measured step cost. Block sizes are explicit overrides, so no
    /// tuner runs inside the sweep — this is the ground truth the tuner
    /// is validated against.
    pub fn sweep_kernel(
        kernel: &'static dyn StpKernel,
        order: usize,
        cells_per_dim: usize,
        block_sizes: &[usize],
        steps: usize,
    ) -> Vec<SweepPoint> {
        let wave = AcousticPlaneWave {
            direction: [1.0, 0.0, 0.0],
            amplitude: 1.0,
            wavenumber: 1.0,
            rho: 1.0,
            bulk: 1.0,
        };
        block_sizes
            .iter()
            .map(|&bs| {
                let mesh = StructuredMesh::unit_cube(cells_per_dim);
                let cells = mesh.num_cells();
                let config = EngineConfig::new(order)
                    .with_kernel(kernel)
                    .with_tuning(TuningMode::Static)
                    .with_block_size(bs);
                let mut engine = Engine::new(mesh, Acoustic, config);
                engine.set_initial(|x, q| {
                    wave.evaluate(x, 0.0, q);
                    Acoustic::set_params(q, 1.0, 1.0);
                });
                let dt = engine.max_dt();
                engine.step(dt); // warm-up: scratch allocation, page faults
                let start = Instant::now();
                for _ in 0..steps {
                    engine.step(dt);
                }
                let us_per_cell =
                    start.elapsed().as_secs_f64() * 1e6 / (steps as f64 * cells as f64);
                SweepPoint {
                    block_size: bs,
                    us_per_cell,
                }
            })
            .collect()
    }

    /// The measured-optimal plateau: every block size whose step cost is
    /// within `tolerance` (e.g. `1.15` = 15 %) of the fastest point.
    /// Step-time curves over block size are flat around the optimum, so
    /// a tuner pick anywhere on the plateau is as good as the argmin.
    pub fn plateau(points: &[SweepPoint], tolerance: f64) -> Vec<usize> {
        let best = points
            .iter()
            .map(|p| p.us_per_cell)
            .fold(f64::INFINITY, f64::min);
        points
            .iter()
            .filter(|p| p.us_per_cell <= best * tolerance)
            .map(|p| p.block_size)
            .collect()
    }
}

/// Minimal micro-bench harness (`harness = false` benches) — a criterion
/// substitute that keeps the workspace free of external dependencies.
pub mod harness {
    use std::time::{Duration, Instant};

    /// Times `f` (median of repeated calls after warm-up) and prints one
    /// aligned row: `group/label   median`.
    pub fn bench(group: &str, label: &str, mut f: impl FnMut()) -> f64 {
        for _ in 0..3 {
            f();
        }
        let mut times = Vec::new();
        let deadline = Instant::now() + Duration::from_millis(300);
        while times.len() < 10 || (Instant::now() < deadline && times.len() < 2000) {
            let t0 = Instant::now();
            f();
            times.push(t0.elapsed().as_secs_f64());
        }
        times.sort_by(f64::total_cmp);
        let median = times[times.len() / 2];
        println!(
            "{:<48} {:>12}",
            format!("{group}/{label}"),
            format_time(median)
        );
        median
    }

    fn format_time(secs: f64) -> String {
        if secs < 1e-6 {
            format!("{:.1} ns", secs * 1e9)
        } else if secs < 1e-3 {
            format!("{:.2} µs", secs * 1e6)
        } else {
            format!("{:.2} ms", secs * 1e3)
        }
    }
}
