//! Tiny dependency-free JSON point emitter for benchmark records.
//!
//! Benchmark binaries append flat measurement objects to a top-level JSON
//! array file (e.g. `BENCH_gemm.json` at the repository root) so that
//! future sessions can add comparable points without re-running old
//! hardware: every point carries its own backend/shape/metric fields and
//! the file stays valid JSON after every append.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Builder for one flat JSON object (string/number/integer fields only —
/// exactly what a benchmark point needs).
#[derive(Debug, Clone, Default)]
pub struct JsonPoint {
    buf: String,
}

impl JsonPoint {
    /// Starts an empty object.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(&mut self, key: &str) {
        if !self.buf.is_empty() {
            self.buf.push_str(", ");
        }
        let _ = write!(self.buf, "\"{}\": ", escape(key));
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, val: &str) -> Self {
        self.key(key);
        let _ = write!(self.buf, "\"{}\"", escape(val));
        self
    }

    /// Adds a finite float field (non-finite values are emitted as
    /// `null`, which plain JSON cannot represent as a number).
    pub fn num(mut self, key: &str, val: f64) -> Self {
        self.key(key);
        if val.is_finite() {
            let _ = write!(self.buf, "{val}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, key: &str, val: usize) -> Self {
        self.key(key);
        let _ = write!(self.buf, "{val}");
        self
    }

    /// Renders the object.
    pub fn finish(&self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Escapes a string for a JSON literal (quotes, backslashes, control
/// characters — benchmark labels never need more).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Appends `point` (a rendered JSON object) to the JSON array in `path`,
/// creating the file as `[point]` when missing or empty. The file is
/// rewritten whole — these are small bench records, not logs — and stays
/// a valid JSON array after every call.
pub fn append_point(path: &Path, point: &str) -> io::Result<()> {
    let existing = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(e),
    };
    let body = existing.trim();
    let merged = if body.is_empty() || body == "[]" {
        format!("[\n  {point}\n]\n")
    } else {
        let inner = body
            .strip_prefix('[')
            .and_then(|s| s.strip_suffix(']'))
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{} is not a JSON array", path.display()),
                )
            })?
            .trim_end();
        format!("[{inner},\n  {point}\n]\n")
    };
    std::fs::write(path, merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_rendering_and_escaping() {
        let p = JsonPoint::new()
            .str("kind", "gemm")
            .str("label", "a\"b\\c\nd")
            .num("gflops", 12.5)
            .num("bad", f64::NAN)
            .int("order", 5)
            .finish();
        assert_eq!(
            p,
            "{\"kind\": \"gemm\", \"label\": \"a\\\"b\\\\c\\nd\", \
             \"gflops\": 12.5, \"bad\": null, \"order\": 5}"
        );
    }

    #[test]
    fn append_builds_a_valid_array() {
        let dir = std::env::temp_dir().join(format!("aderdg_points_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("points.json");
        let _ = std::fs::remove_file(&path);

        append_point(&path, &JsonPoint::new().int("a", 1).finish()).unwrap();
        append_point(&path, &JsonPoint::new().int("b", 2).finish()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "[\n  {\"a\": 1},\n  {\"b\": 2}\n]\n");

        // Appending to a non-array file fails loudly instead of mangling.
        std::fs::write(&path, "{}").unwrap();
        assert!(append_point(&path, "{}").is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
