//! Micro-benchmarks of the small-GEMM substrate: the derivative GEMM
//! shapes the kernels actually issue, across every registered backend.

use aderdg_bench::harness;
use aderdg_gemm::{backends, Gemm, GemmSpec};
use aderdg_tensor::Lcg;

fn rand_vec(len: usize, seed: u64) -> Vec<f64> {
    Lcg::new(seed).vec(len, -0.5, 0.5)
}

fn main() {
    // The x-derivative slice GEMM of the LoG kernel: D(n×n) · B(n×m_pad).
    for n in [4usize, 6, 8, 11] {
        let m_pad = 24; // m = 21 padded to the AVX-512 width
        let spec = GemmSpec::dense(n, m_pad, n);
        let a = rand_vec(n * n, 3);
        let b = rand_vec(n * m_pad, 4);
        let mut out = vec![0.0; n * m_pad];
        for backend in backends() {
            if !backend.supported() {
                continue;
            }
            let plan = Gemm::with_backend(spec, *backend);
            harness::bench("gemm", &format!("{}/n{n}xm{m_pad}", backend.name()), || {
                plan.execute(&a, &b, &mut out)
            });
        }
    }
    // The fused z-derivative GEMM: D(n×n) · B(n × n²·m_pad) — one wide GEMM.
    for n in [6usize, 8] {
        let cols = n * n * 24;
        let spec = GemmSpec::dense(n, cols, n);
        let a = rand_vec(n * n, 5);
        let b = rand_vec(n * cols, 6);
        let mut out = vec![0.0; n * cols];
        let plan = Gemm::new(spec);
        harness::bench("gemm", &format!("fused_z/{n}"), || {
            plan.execute(&a, &b, &mut out)
        });
    }
}
