//! Criterion micro-benchmarks of the small-GEMM substrate: the derivative
//! GEMM shapes the kernels actually issue, across ISA levels.

use aderdg_gemm::{Gemm, GemmSpec, Isa};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

fn rand_vec(len: usize, mut seed: u64) -> Vec<f64> {
    (0..len)
        .map(|_| {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        })
        .collect()
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    // The x-derivative slice GEMM of the LoG kernel: D(n×n) · B(n×m_pad).
    for n in [4usize, 6, 8, 11] {
        let m_pad = 24; // m = 21 padded to the AVX-512 width
        let spec = GemmSpec::dense(n, m_pad, n);
        let a = rand_vec(n * n, 3);
        let b = rand_vec(n * m_pad, 4);
        let mut out = vec![0.0; n * m_pad];
        group.throughput(Throughput::Elements(spec.flops()));
        for (label, isa) in [
            ("baseline", Isa::Baseline),
            ("avx2", Isa::Avx2),
            ("avx512", Isa::Avx512),
        ] {
            let plan = Gemm::with_isa(spec, isa);
            group.bench_with_input(
                BenchmarkId::new(label, format!("n{n}xm{m_pad}")),
                &n,
                |bch, _| bch.iter(|| plan.execute(&a, &b, &mut out)),
            );
        }
    }
    // The fused z-derivative GEMM: D(n×n) · B(n × n²·m_pad) — one wide GEMM.
    for n in [6usize, 8] {
        let cols = n * n * 24;
        let spec = GemmSpec::dense(n, cols, n);
        let a = rand_vec(n * n, 5);
        let b = rand_vec(n * cols, 6);
        let mut out = vec![0.0; n * cols];
        group.throughput(Throughput::Elements(spec.flops()));
        let plan = Gemm::new(spec);
        group.bench_with_input(BenchmarkId::new("fused_z", n), &n, |bch, _| {
            bch.iter(|| plan.execute(&a, &b, &mut out))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
