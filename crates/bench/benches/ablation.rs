//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **padding** — padded leading dimension vs tight rows ("padding flops
//!   come for free", Sec. III-A),
//! * **fusion** — one wide fused-dimension GEMM vs a loop of narrow slice
//!   GEMMs for the y-derivative (Fig. 7),
//! * **transpose** — the AoS↔AoSoA layout conversion cost (Sec. V-B),
//! * **userfun** — vectorized vs pointwise elastic flux on an x-line
//!   (Fig. 8).

use aderdg_bench::harness;
use aderdg_gemm::{Gemm, GemmSpec};
use aderdg_pde::{Elastic, LinearPde, Material};
use aderdg_tensor::{aos_to_aosoa, aosoa_to_aos, DofLayout, Lcg, SimdWidth};

fn rand_vec(len: usize, seed: u64) -> Vec<f64> {
    Lcg::new(seed).vec(len, -0.5, 0.5)
}

fn bench_padding() {
    // m = 21: tight rows (ld 21, unaligned vector tails) vs padded (ld 24).
    let n = 8;
    for (label, ld) in [("tight_ld21", 21usize), ("padded_ld24", 24)] {
        let spec = GemmSpec {
            m: n,
            n: 21,
            k: n,
            lda: n,
            ldb: ld,
            ldc: ld,
            alpha: 1.0,
            beta: 0.0,
        };
        let a = rand_vec(n * n, 1);
        let b = rand_vec(n * ld, 2);
        let mut out = vec![0.0; n * ld];
        let plan = Gemm::new(spec);
        harness::bench("ablation_padding", label, || plan.execute(&a, &b, &mut out));
    }
    // Padded *and* computing the padding columns (n = 24 columns): the
    // paper's actual choice — full vectors, no masking.
    let spec = GemmSpec::dense(n, 24, n);
    let a = rand_vec(n * n, 1);
    let b = rand_vec(n * 24, 2);
    let mut out = vec![0.0; n * 24];
    let plan = Gemm::new(spec);
    harness::bench("ablation_padding", "padded_compute_pad_cols", || {
        plan.execute(&a, &b, &mut out)
    });
}

fn bench_fusion() {
    // y-derivative over an n³ AoS tensor: fused (one GEMM of width n·m_pad
    // per k3) vs unfused (n separate GEMMs of width m_pad).
    let n = 8usize;
    let m_pad = 24usize;
    let vol = n * n * n * m_pad;
    let d = rand_vec(n * n, 3);
    let src = rand_vec(vol, 4);
    let mut dst = vec![0.0; vol];

    let fused = Gemm::new(GemmSpec {
        m: n,
        n: n * m_pad,
        k: n,
        lda: n,
        ldb: n * m_pad,
        ldc: n * m_pad,
        alpha: 1.0,
        beta: 0.0,
    });
    harness::bench("ablation_fusion", "fused", || {
        for k3 in 0..n {
            fused.execute_offset(
                &d,
                0,
                &src,
                k3 * n * n * m_pad,
                &mut dst,
                k3 * n * n * m_pad,
            );
        }
    });

    let unfused = Gemm::new(GemmSpec {
        m: n,
        n: m_pad,
        k: n,
        lda: n,
        ldb: n * m_pad,
        ldc: n * m_pad,
        alpha: 1.0,
        beta: 0.0,
    });
    harness::bench("ablation_fusion", "unfused", || {
        for k3 in 0..n {
            for k1 in 0..n {
                let off = k3 * n * n * m_pad + k1 * m_pad;
                unfused.execute_offset(&d, 0, &src, off, &mut dst, off);
            }
        }
    });
}

fn bench_transpose() {
    for n in [6usize, 9] {
        let aos = DofLayout::aos(n, 21, SimdWidth::W8);
        let aosoa = DofLayout::aosoa(n, 21, SimdWidth::W8);
        let src = rand_vec(aos.len(), 5);
        let mut hybrid = vec![0.0; aosoa.len()];
        let mut back = vec![0.0; aos.len()];
        harness::bench("ablation_transpose", &format!("roundtrip/{n}"), || {
            aos_to_aosoa(&src, &aos, &mut hybrid, &aosoa);
            aosoa_to_aos(&hybrid, &aosoa, &mut back, &aos);
        });
    }
}

fn bench_userfun() {
    // One x-line of n = 8 nodes, m = 21 quantities: vectorized SoA call
    // (Fig. 8) vs pointwise AoS loop.
    let pde = Elastic;
    let n = 8usize;
    let stride = 8usize;
    let m = 21usize;
    let mat = Material {
        rho: 2.7,
        cp: 6.0,
        cs: 3.46,
    };
    // SoA block.
    let mut q_soa = vec![0.0; m * stride];
    for i in 0..n {
        let mut node = vec![0.0; m];
        for (s, v) in node.iter_mut().enumerate().take(9) {
            *v = (s * 3 + i) as f64 * 0.01;
        }
        Elastic::set_params(&mut node, mat, &Elastic::IDENTITY_JAC);
        for s in 0..m {
            q_soa[s * stride + i] = node[s];
        }
    }
    let mut f_soa = vec![0.0; m * stride];
    harness::bench("ablation_userfun", "vectorized_xline", || {
        for d in 0..3 {
            pde.flux_vect(d, &q_soa, &mut f_soa, n, stride);
        }
    });
    // Pointwise on the same data (AoS gather).
    let mut q_aos = vec![0.0; n * m];
    for i in 0..n {
        for s in 0..m {
            q_aos[i * m + s] = q_soa[s * stride + i];
        }
    }
    let mut f_aos = vec![0.0; n * m];
    harness::bench("ablation_userfun", "pointwise_loop", || {
        for d in 0..3 {
            for i in 0..n {
                let (qs, fs) = (&q_aos[i * m..(i + 1) * m], &mut f_aos[i * m..(i + 1) * m]);
                pde.flux(d, qs, fs);
            }
        }
    });
}

fn main() {
    bench_padding();
    bench_fusion();
    bench_transpose();
    bench_userfun();
}
