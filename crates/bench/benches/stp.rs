//! Timing of every registered STP kernel (elastic m = 21).
//!
//! Complements the figure binaries with per-kernel timings at a
//! representative subset of orders. Registry-driven: a newly registered
//! kernel shows up here with zero edits.

use aderdg_bench::{elastic_state, harness, M_ELASTIC};
use aderdg_core::kernels::{StpInputs, StpOutputs};
use aderdg_core::{KernelRegistry, StpConfig, StpPlan};
use aderdg_pde::Elastic;
use aderdg_tensor::SimdWidth;

fn main() {
    let pde = Elastic;
    for order in [4usize, 6, 8] {
        let plan = StpPlan::new(
            StpConfig::new(order, M_ELASTIC).with_width(SimdWidth::W8),
            [0.1; 3],
        );
        let q0 = elastic_state(&plan, 1);
        for kernel in KernelRegistry::global().kernels() {
            let mut scratch = kernel.make_scratch(&plan);
            let mut out = StpOutputs::new(&plan);
            harness::bench("stp", &format!("{}/{order}", kernel.name()), || {
                kernel.run(
                    &plan,
                    &pde,
                    scratch.as_mut(),
                    &StpInputs {
                        q0: &q0,
                        dt: 1e-3,
                        source: None,
                    },
                    &mut out,
                );
            });
        }
    }
}
