//! Criterion timing of the four STP kernel variants (elastic m = 21).
//!
//! Complements the figure binaries with statistically careful per-variant
//! timings at a representative subset of orders.

use aderdg_bench::{elastic_state, M_ELASTIC};
use aderdg_core::kernels::{run_stp, StpInputs, StpOutputs, StpScratch};
use aderdg_core::{KernelVariant, StpConfig, StpPlan};
use aderdg_pde::Elastic;
use aderdg_tensor::SimdWidth;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_stp(c: &mut Criterion) {
    let mut group = c.benchmark_group("stp");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let pde = Elastic;
    for order in [4usize, 6, 8] {
        let plan = StpPlan::new(
            StpConfig::new(order, M_ELASTIC).with_width(SimdWidth::W8),
            [0.1; 3],
        );
        let q0 = elastic_state(&plan, 1);
        for variant in KernelVariant::ALL {
            let mut scratch = StpScratch::new(variant, &plan);
            let mut out = StpOutputs::new(&plan);
            group.bench_with_input(
                BenchmarkId::new(variant.name(), order),
                &order,
                |b, _| {
                    b.iter(|| {
                        run_stp(
                            &plan,
                            &pde,
                            &mut scratch,
                            &StpInputs {
                                q0: &q0,
                                dt: 1e-3,
                                source: None,
                            },
                            &mut out,
                        )
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_stp);
criterion_main!(benches);
