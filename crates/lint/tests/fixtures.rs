//! Fixture corpus for every lint: positive snippets that must fire,
//! negative snippets that must stay silent, and the tricky lexical
//! shapes (code inside strings and comments, raw strings, multiline
//! calls) that would fool a regex-based checker.
//!
//! Fixtures are inline raw strings, not files — the workspace self-scan
//! lexes this very file, and string contents are opaque to every pass,
//! so the corpus can never contaminate the real lint run.

use aderdg_lint::{find_workspace_root, json_summary, lint_source, load_project, run_lints};

/// Names of the lints that fired, in diagnostic order.
fn fired(rel: &str, src: &str) -> Vec<&'static str> {
    lint_source(rel, src).iter().map(|d| d.lint).collect()
}

const LIB: &str = "crates/core/src/fixture.rs";

// ---------------------------------------------------------------- safety

#[test]
fn unsafe_without_comment_fires() {
    let src = r#"
pub fn f(p: *const u8) -> u8 {
    unsafe { *p }
}
"#;
    assert_eq!(fired(LIB, src), ["safety-comment"]);
}

#[test]
fn unsafe_with_safety_comment_above_is_clean() {
    let src = r#"
pub fn f(p: *const u8) -> u8 {
    // SAFETY: caller contract — `p` is valid for one read.
    unsafe { *p }
}
"#;
    assert_eq!(fired(LIB, src), [] as [&str; 0]);
}

#[test]
fn unsafe_with_trailing_comment_is_clean() {
    let src = r#"
pub fn f(p: *const u8) -> u8 {
    unsafe { *p } // SAFETY: caller contract.
}
"#;
    assert_eq!(fired(LIB, src), [] as [&str; 0]);
}

#[test]
fn unsafe_fn_with_safety_doc_section_is_clean() {
    let src = r#"
/// Reads one byte.
///
/// # Safety
/// `p` must be valid for one read.
pub unsafe fn f(p: *const u8) -> u8 {
    // SAFETY: forwarded caller contract.
    unsafe { *p }
}
"#;
    assert_eq!(fired(LIB, src), [] as [&str; 0]);
}

#[test]
fn comment_spanning_attribute_still_attaches() {
    let src = r#"
// SAFETY: the attribute between the comment and the item is fine.
#[inline(always)]
unsafe fn g() {}
"#;
    assert_eq!(fired(LIB, src), [] as [&str; 0]);
}

#[test]
fn todo_stub_fires_safety_stub() {
    let src = r#"
pub fn f(p: *const u8) -> u8 {
    // SAFETY: TODO(audit): argue why this is sound.
    unsafe { *p }
}
"#;
    assert_eq!(fired(LIB, src), ["safety-stub"]);
}

#[test]
fn unsafe_inside_strings_and_comments_is_invisible() {
    let src = r##"
// this comment mentions unsafe { *p } and is not code
pub fn f() -> &'static str {
    let a = "unsafe { transmute(0) }";
    let b = r#"unsafe impl Send for X {}"#;
    let _ = (a, b);
    "unsafe"
}
"##;
    assert_eq!(fired(LIB, src), [] as [&str; 0]);
}

#[test]
fn safety_tag_inside_string_does_not_satisfy() {
    // The tag must be a comment; a string containing "SAFETY:" is data.
    let src = r#"
pub fn f(p: *const u8) -> u8 {
    let _claim = "SAFETY: trust me";
    unsafe { *p }
}
"#;
    assert_eq!(fired(LIB, src), ["safety-comment"]);
}

#[test]
fn stale_comment_past_statement_boundary_does_not_attach() {
    // The SAFETY comment annotates the first statement; the `;` boundary
    // plus distance keeps it from excusing the second unsafe block.
    let src = r#"
pub fn f(p: *const u8) -> u8 {
    // SAFETY: caller contract — valid for one read.
    let a = unsafe { *p };
    let _pad1 = 1;
    let _pad2 = 2;
    let _pad3 = 3;
    let _pad4 = 4;
    let b = unsafe { *p.add(1) };
    a + b
}
"#;
    assert_eq!(fired(LIB, src), ["safety-comment"]);
}

// -------------------------------------------------------------- ordering

const POOL: &str = "crates/core/src/pool.rs";

#[test]
fn untagged_ordering_in_scheduler_file_fires() {
    let src = r#"
fn f(flag: &std::sync::atomic::AtomicBool) -> bool {
    flag.load(Ordering::Acquire)
}
"#;
    assert_eq!(fired(POOL, src), ["ordering-comment"]);
}

#[test]
fn tagged_ordering_is_clean() {
    let src = r#"
fn f(flag: &std::sync::atomic::AtomicBool) -> bool {
    // ORDERING: Acquire pairs with the Release store in `g`.
    flag.load(Ordering::Acquire)
}
"#;
    assert_eq!(fired(POOL, src), [] as [&str; 0]);
}

#[test]
fn ordering_outside_scheduler_files_is_out_of_scope() {
    let src = r#"
fn f(flag: &std::sync::atomic::AtomicBool) -> bool {
    flag.load(Ordering::SeqCst)
}
"#;
    assert_eq!(fired("crates/serve/src/lib.rs", src), [] as [&str; 0]);
}

#[test]
fn ordering_in_test_module_is_exempt() {
    let src = r#"
#[cfg(test)]
mod tests {
    fn f(flag: &std::sync::atomic::AtomicBool) -> bool {
        flag.load(Ordering::Relaxed)
    }
}
"#;
    assert_eq!(fired(POOL, src), [] as [&str; 0]);
}

#[test]
fn ordering_enum_definition_itself_does_not_fire() {
    // `Ordering` not followed by `::<mode>` (e.g. a `use` or a match on
    // `cmp::Ordering`) is not an atomic ordering site.
    let src = r#"
use std::cmp::Ordering;
fn f(a: i32, b: i32) -> bool {
    matches!(a.cmp(&b), Ordering::Less)
}
"#;
    assert_eq!(fired(POOL, src), [] as [&str; 0]);
}

// -------------------------------------------------------------- no-panic

#[test]
fn unwrap_expect_panic_fire_in_library_code() {
    let src = r#"
pub fn f(x: Option<u8>) -> u8 {
    let a = x.unwrap();
    let b = x.expect("present");
    if a + b == 0 {
        panic!("zero");
    }
    a
}
"#;
    assert_eq!(fired(LIB, src), ["no-panic", "no-panic", "no-panic"]);
}

#[test]
fn panic_ok_tag_suppresses() {
    let src = r#"
pub fn f(x: Option<u8>) -> u8 {
    // PANIC-OK: internal invariant — the caller just inserted it.
    x.unwrap()
}
"#;
    assert_eq!(fired(LIB, src), [] as [&str; 0]);
}

#[test]
fn multiline_expect_is_still_caught() {
    let src = r#"
pub fn f(x: Option<u8>) -> u8 {
    x.expect(
        "a long message that pushed the call onto its own lines",
    )
}
"#;
    assert_eq!(fired(LIB, src), ["no-panic"]);
}

#[test]
fn test_module_and_test_collateral_are_exempt() {
    let src = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        Some(1).unwrap();
        panic!("fine in tests");
    }
}
"#;
    assert_eq!(fired(LIB, src), [] as [&str; 0]);
    // Same snippet without the cfg(test) wrapper, but under tests/.
    let bare = r#"
fn helper(x: Option<u8>) -> u8 {
    x.unwrap()
}
"#;
    assert_eq!(fired("crates/core/tests/smoke.rs", bare), [] as [&str; 0]);
}

#[test]
fn cfg_not_test_is_not_exempt() {
    let src = r#"
#[cfg(not(test))]
pub fn f(x: Option<u8>) -> u8 {
    x.unwrap()
}
"#;
    assert_eq!(fired(LIB, src), ["no-panic"]);
}

#[test]
fn unwrap_mentions_that_are_not_calls_do_not_fire() {
    let src = r#"
// .unwrap() in a comment, "x.expect(y)" in a string: not calls.
pub fn unwrap_free() -> &'static str {
    let msg = "never .unwrap() here; panic! neither";
    msg
}
"#;
    assert_eq!(fired(LIB, src), [] as [&str; 0]);
}

// ----------------------------------------------------------- determinism

#[test]
fn instant_and_hashmap_fire_in_numeric_core() {
    let src = r#"
use std::collections::HashMap;
pub fn f() {
    let t = std::time::Instant::now();
    let m: HashMap<u32, u32> = HashMap::new();
    let _ = (t, m);
}
"#;
    // One per mention: the import, the `Instant` ident, two `HashMap`s.
    assert_eq!(
        fired(LIB, src),
        ["determinism", "determinism", "determinism", "determinism"]
    );
}

#[test]
fn duration_is_plain_data_and_clean() {
    let src = r#"
pub fn f(d: std::time::Duration) -> u64 {
    d.as_secs()
}
"#;
    assert_eq!(fired(LIB, src), [] as [&str; 0]);
}

#[test]
fn determinism_ok_tag_suppresses() {
    let src = r#"
pub fn f() -> f64 {
    // DETERMINISM-OK: timing is reporting-only metadata.
    let t = std::time::Instant::now();
    t.elapsed().as_secs_f64()
}
"#;
    assert_eq!(fired(LIB, src), [] as [&str; 0]);
}

#[test]
fn probe_tuning_files_are_allowlisted() {
    let src = r#"
pub fn f() -> std::time::Instant {
    std::time::Instant::now()
}
"#;
    assert_eq!(fired("crates/core/src/tune.rs", src), [] as [&str; 0]);
    assert_eq!(fired("crates/gemm/src/backend.rs", src), [] as [&str; 0]);
}

#[test]
fn non_core_crates_are_out_of_scope() {
    let src = r#"
use std::collections::HashMap;
pub fn f() -> HashMap<u32, u32> {
    HashMap::new()
}
"#;
    assert_eq!(fired("crates/serve/src/lib.rs", src), [] as [&str; 0]);
}

// -------------------------------------------------------- knobs-registry

/// Builds a throwaway project tree, runs the full project-level lint,
/// and tears it down.
fn with_project(files: &[(&str, &str)], f: impl FnOnce(Vec<aderdg_lint::Diagnostic>)) {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let root = std::env::temp_dir().join(format!(
        "aderdg-lint-fixture-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    for (rel, text) in files {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, text).unwrap();
    }
    std::fs::create_dir_all(&root).unwrap();
    let project = load_project(&root).unwrap();
    let diags = run_lints(&project);
    std::fs::remove_dir_all(&root).ok();
    f(diags);
}

/// Assembles an `ADERDG_*` name at runtime so the workspace self-scan
/// never sees a fake knob as an exact string literal.
fn knob(suffix: &str) -> String {
    format!("ADERDG_{suffix}")
}

#[test]
fn knob_read_missing_from_registry_fires_both_ways() {
    let read = knob("FIXTURE_READ");
    let stale = knob("FIXTURE_STALE");
    let src = format!("pub fn f() -> bool {{ std::env::var(\"{read}\").is_ok() }}\n");
    let registry = format!("# knobs\n\n| Knob | Effect |\n|---|---|\n| `{stale}` | nothing |\n");
    with_project(
        &[("crates/x/src/lib.rs", &src), ("docs/KNOBS.md", &registry)],
        |diags| {
            let lints: Vec<_> = diags.iter().map(|d| d.lint).collect();
            assert_eq!(lints, ["knobs-registry", "knobs-registry"]);
            let msgs: Vec<_> = diags.iter().map(|d| d.message.as_str()).collect();
            assert!(msgs
                .iter()
                .any(|m| m.contains("missing from docs/KNOBS.md")));
            assert!(msgs.iter().any(|m| m.contains("never read in source")));
        },
    );
}

#[test]
fn documented_knob_read_in_source_is_clean() {
    let name = knob("FIXTURE_OK");
    let src = format!("pub fn f() -> bool {{ std::env::var(\"{name}\").is_ok() }}\n");
    let registry = format!("| Knob | Effect |\n|---|---|\n| `{name}` | fixture |\n");
    with_project(
        &[("crates/x/src/lib.rs", &src), ("docs/KNOBS.md", &registry)],
        |diags| assert!(diags.is_empty(), "{diags:?}"),
    );
}

#[test]
fn missing_registry_file_is_one_finding() {
    with_project(&[("crates/x/src/lib.rs", "pub fn f() {}\n")], |diags| {
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].lint, "knobs-registry");
        assert!(diags[0].message.contains("docs/KNOBS.md is missing"));
    });
}

#[test]
fn knob_in_prose_or_panic_message_is_not_a_read() {
    let name = knob("FIXTURE_PROSE");
    let src = format!(
        "pub fn f() {{ let _ = \"set {name} to tune this\"; }}\n// mentions {name} in a comment\n"
    );
    with_project(
        &[
            ("crates/x/src/lib.rs", &src),
            ("docs/KNOBS.md", "| `nothing` |\n"),
        ],
        |diags| assert!(diags.is_empty(), "{diags:?}"),
    );
}

// --------------------------------------------------- summary + self-scan

#[test]
fn json_summary_counts_every_lint() {
    let diags = lint_source(
        LIB,
        r#"
pub fn f(x: Option<u8>, p: *const u8) -> u8 {
    let a = x.unwrap();
    a + unsafe { *p }
}
"#,
    );
    let json = json_summary(&diags);
    assert_eq!(
        json,
        "{\"total\": 2, \"determinism\": 0, \"knobs-registry\": 0, \
         \"no-panic\": 1, \"ordering-comment\": 0, \"safety-comment\": 1, \
         \"safety-stub\": 0}"
    );
}

#[test]
fn workspace_self_scan_is_clean() {
    let here = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(&here).expect("workspace root above crates/lint");
    let project = load_project(&root).expect("workspace scan");
    let diags = run_lints(&project);
    assert!(
        diags.is_empty(),
        "the workspace must lint clean; findings:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
