//! `aderdg-lint` — the workspace invariant checker CLI.
//!
//! ```text
//! aderdg-lint                    report findings (exit 0 regardless)
//! aderdg-lint --check            exit 1 when there are findings (CI gate)
//! aderdg-lint --json             print a per-lint count summary as JSON
//! aderdg-lint --fix-safety-stubs insert `// SAFETY: TODO…` stubs above
//!                                every undocumented `unsafe` (the stubs
//!                                still fail `--check` until filled in)
//! aderdg-lint --root <dir>       lint a different workspace root
//! ```

use aderdg_lint::{find_workspace_root, json_summary, load_project, run_lints, Diagnostic};
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: aderdg-lint [--check] [--json] [--fix-safety-stubs] [--root <dir>]
see docs/LINTS.md for what each lint enforces and how to suppress it";

struct Args {
    root: Option<PathBuf>,
    check: bool,
    json: bool,
    fix_safety_stubs: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        check: false,
        json: false,
        fix_safety_stubs: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => args.check = true,
            "--json" => args.json = true,
            "--fix-safety-stubs" => args.fix_safety_stubs = true,
            "--root" => match it.next() {
                Some(dir) => args.root = Some(PathBuf::from(dir)),
                None => return Err("--root requires a directory".to_string()),
            },
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

/// Inserts a `// SAFETY: TODO…` stub line above every `safety-comment`
/// finding, bottom-up so earlier insertions cannot shift later lines.
/// Returns the number of stubs written.
fn fix_safety_stubs(root: &std::path::Path, diags: &[Diagnostic]) -> std::io::Result<usize> {
    let mut by_file: std::collections::BTreeMap<&str, Vec<u32>> = std::collections::BTreeMap::new();
    for d in diags {
        if d.lint == "safety-comment" {
            by_file.entry(&d.path).or_default().push(d.line);
        }
    }
    let mut inserted = 0usize;
    for (rel, mut lines) in by_file {
        lines.sort_unstable();
        lines.dedup();
        let path = root.join(rel);
        let text = std::fs::read_to_string(&path)?;
        let mut out: Vec<String> = text.lines().map(String::from).collect();
        for &line in lines.iter().rev() {
            let i = (line as usize).saturating_sub(1).min(out.len());
            let indent: String = out
                .get(i)
                .map(|l| l.chars().take_while(|c| c.is_whitespace()).collect())
                .unwrap_or_default();
            out.insert(
                i,
                format!("{indent}// SAFETY: TODO(audit): argue why this is sound."),
            );
            inserted += 1;
        }
        let mut joined = out.join("\n");
        joined.push('\n');
        // Atomic replace, same tmp+rename discipline as the engine's
        // output writers.
        let tmp = path.with_extension("rs.lint-tmp");
        std::fs::write(&tmp, joined)?;
        std::fs::rename(&tmp, &path)?;
    }
    Ok(inserted)
}

fn main() -> ExitCode {
    let mut err = std::io::stderr();
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            let _ = if msg.is_empty() {
                writeln!(err, "{USAGE}")
            } else {
                writeln!(err, "aderdg-lint: {msg}\n{USAGE}")
            };
            return ExitCode::FAILURE;
        }
    };
    let root = args.root.or_else(|| {
        let cwd = std::env::current_dir().ok()?;
        find_workspace_root(&cwd)
    });
    let Some(root) = root else {
        let _ = writeln!(
            err,
            "aderdg-lint: no workspace root found (use --root <dir>)"
        );
        return ExitCode::FAILURE;
    };
    let run = |root: &std::path::Path| -> std::io::Result<Vec<Diagnostic>> {
        Ok(run_lints(&load_project(root)?))
    };
    let mut diags = match run(&root) {
        Ok(diags) => diags,
        Err(e) => {
            let _ = writeln!(err, "aderdg-lint: cannot scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    if args.fix_safety_stubs {
        match fix_safety_stubs(&root, &diags) {
            Ok(0) => {}
            Ok(n) => {
                let _ = writeln!(err, "aderdg-lint: inserted {n} SAFETY TODO stub(s)");
                // Re-scan so the report reflects the patched tree.
                match run(&root) {
                    Ok(fresh) => diags = fresh,
                    Err(e) => {
                        let _ = writeln!(err, "aderdg-lint: re-scan failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            Err(e) => {
                let _ = writeln!(err, "aderdg-lint: --fix-safety-stubs failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut out = std::io::stdout();
    if args.json {
        let _ = writeln!(out, "{}", json_summary(&diags));
    } else {
        for d in &diags {
            let _ = writeln!(out, "{d}");
        }
        let _ = writeln!(
            out,
            "aderdg-lint: {} finding(s) across {} lint(s)",
            diags.len(),
            aderdg_lint::lints::LINT_NAMES.len()
        );
    }
    if args.check && !diags.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
