//! # aderdg-lint
//!
//! The workspace's dependency-free project-invariant checker. Rust's
//! type system cannot see the contracts this codebase leans on — that
//! every `unsafe` block argues its soundness, that every atomic memory
//! ordering in the scheduler is justified, that library code never
//! panics on user input, that the numeric core stays bit-deterministic
//! and hermetic, and that every `ADERDG_*` knob is documented. This
//! crate enforces them statically: a hand-rolled lexer ([`lex`]) that
//! never mistakes strings or comments for code, a pass framework over
//! every workspace `.rs` file, and one pass per invariant family
//! ([`lints`]).
//!
//! Run it as `cargo run -p aderdg-lint -- --check`; see `docs/LINTS.md`
//! for each lint's rationale and suppression syntax, and `docs/KNOBS.md`
//! for the env-var registry the `knobs-registry` lint cross-checks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod lex;
pub mod lints;

use lex::{Tok, TokKind};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// How far above a flagged token a justification comment may sit (in
/// lines) when it is not directly attached to the statement.
const TAG_PROXIMITY_LINES: u32 = 4;

/// One lint finding, rendered rustc-style.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The lint that produced the finding (e.g. `safety-comment`).
    pub lint: &'static str,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix or suppress it.
    pub help: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}:{}:{}: error[{}]: {}",
            self.path, self.line, self.col, self.lint, self.message
        )?;
        write!(f, "  help: {}", self.help)
    }
}

/// One lexed workspace source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// The token stream (comments included).
    pub toks: Vec<Tok>,
    /// Token-index ranges covered by `#[cfg(test)]` / `#[test]` items.
    test_spans: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Lexes `text` into a source file model.
    pub fn parse(rel: impl Into<String>, text: &str) -> SourceFile {
        let toks = lex::lex(text);
        let test_spans = compute_test_spans(&toks);
        SourceFile {
            rel: rel.into(),
            toks,
            test_spans,
        }
    }

    /// True when token `idx` falls inside a `#[cfg(test)]` module/item
    /// or a `#[test]` function.
    pub fn in_test(&self, idx: usize) -> bool {
        self.test_spans.iter().any(|&(s, e)| s <= idx && idx < e)
    }

    /// Searches for a justification comment containing any of `needles`
    /// that plausibly annotates token `idx`:
    ///
    /// * trailing on the same line (`do_it(); // TAG: why`),
    /// * between the previous statement boundary (`;`/`{`/`}`) and the
    ///   token — the "comment directly above the statement" idiom, which
    ///   also spans attribute lines,
    /// * or within `TAG_PROXIMITY_LINES` (4) lines above the token, for
    ///   comments above a `for`/`if`/`match` header whose body contains
    ///   the flagged expression.
    pub fn tag_near(&self, idx: usize, needles: &[&str]) -> Option<&Tok> {
        let line = self.toks[idx].line;
        let hit = |t: &Tok| t.is_comment() && needles.iter().any(|n| t.text.contains(n));
        // Trailing comment on the same line.
        for t in &self.toks[idx + 1..] {
            if t.line > line {
                break;
            }
            if hit(t) {
                // Indexing gymnastics avoided: re-find by pointer equality.
                return Some(t);
            }
        }
        // Backwards: stop at a statement boundary, but keep accepting
        // close-by comments past it (the proximity rule).
        let mut bounded = true;
        for t in self.toks[..idx].iter().rev() {
            if t.line + TAG_PROXIMITY_LINES < line && !bounded {
                break;
            }
            if hit(t) && (bounded || t.line + TAG_PROXIMITY_LINES >= line) {
                return Some(t);
            }
            if !t.is_comment() && matches!(t.kind, TokKind::Punct(';' | '{' | '}')) {
                bounded = false;
                if t.line + TAG_PROXIMITY_LINES < line {
                    break;
                }
            }
        }
        None
    }

    /// Builds a [`Diagnostic`] at token `idx`.
    pub fn diag(
        &self,
        lint: &'static str,
        idx: usize,
        message: impl Into<String>,
        help: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            lint,
            path: self.rel.clone(),
            line: self.toks[idx].line,
            col: self.toks[idx].col,
            message: message.into(),
            help: help.into(),
        }
    }
}

/// Finds the token ranges of test-only code: any item carrying a
/// `#[cfg(test)]`-like or `#[test]` attribute, from the attribute to the
/// item's closing brace. `#[cfg(not(test))]` is *not* a test span.
fn compute_test_spans(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_punct('#') {
            i += 1;
            continue;
        }
        let Some((attr_end, is_test)) = scan_attribute(toks, i) else {
            i += 1;
            continue;
        };
        if !is_test {
            i = attr_end;
            continue;
        }
        // Skip any further attributes between this one and the item.
        let mut j = attr_end;
        while j < toks.len() && toks[j].is_punct('#') {
            match scan_attribute(toks, j) {
                Some((end, _)) => j = end,
                None => break,
            }
        }
        // Find the item body: the first `{` before any `;` (a `;` means
        // an item with no body — nothing to span).
        let mut depth = 0usize;
        let mut end = None;
        for (k, t) in toks.iter().enumerate().skip(j) {
            match t.kind {
                TokKind::Punct(';') if depth == 0 => break,
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end = Some(k + 1);
                        break;
                    }
                }
                _ => {}
            }
        }
        if let Some(end) = end {
            spans.push((i, end));
            i = end;
        } else {
            i = attr_end;
        }
    }
    spans
}

/// Scans an attribute starting at the `#` token; returns the token index
/// one past the closing `]` and whether the attribute marks test code.
fn scan_attribute(toks: &[Tok], hash: usize) -> Option<(usize, bool)> {
    let mut i = hash + 1;
    while i < toks.len() && toks[i].is_comment() {
        i += 1;
    }
    if i >= toks.len() || !toks[i].is_punct('[') {
        return None;
    }
    let mut depth = 0usize;
    let mut has_test = false;
    let mut has_not = false;
    for (k, t) in toks.iter().enumerate().skip(i) {
        match t.kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return Some((k + 1, has_test && !has_not));
                }
            }
            TokKind::Ident if t.text == "test" => has_test = true,
            TokKind::Ident if t.text == "not" => has_not = true,
            _ => {}
        }
    }
    None
}

/// The whole scanned workspace, handed to project-level passes.
#[derive(Debug)]
pub struct Project {
    /// Workspace root.
    pub root: PathBuf,
    /// Every lexed `.rs` file, sorted by relative path (deterministic
    /// diagnostic order).
    pub files: Vec<SourceFile>,
}

/// Collects and lexes every workspace `.rs` file under `root`, skipping
/// `target/`, VCS metadata and the lint fixture corpus.
pub fn load_project(root: &Path) -> std::io::Result<Project> {
    let mut paths = Vec::new();
    walk(root, root, &mut paths)?;
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for rel in paths {
        let text = std::fs::read_to_string(root.join(&rel))?;
        files.push(SourceFile::parse(rel.replace('\\', "/"), &text));
    }
    Ok(Project {
        root: root.to_path_buf(),
        files,
    })
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "target" | ".git" | ".github" | "fixtures") {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().into_owned());
            }
        }
    }
    Ok(())
}

/// Runs every lint pass over the project and returns the findings,
/// sorted by path, line and column.
pub fn run_lints(project: &Project) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut passes = lints::all_passes();
    for pass in &mut passes {
        for file in &project.files {
            pass.check_file(file, &mut out);
        }
        pass.finish(project, &mut out);
    }
    out.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.lint).cmp(&(b.path.as_str(), b.line, b.col, b.lint))
    });
    out
}

/// Lints a single in-memory source snippet under a virtual path — the
/// unit-test entry point (project-level passes like `knobs-registry`
/// need [`run_lints`] instead).
pub fn lint_source(rel: &str, text: &str) -> Vec<Diagnostic> {
    let file = SourceFile::parse(rel, text);
    let mut out = Vec::new();
    for pass in &mut lints::all_passes() {
        pass.check_file(&file, &mut out);
    }
    out.sort_by(|a, b| (a.line, a.col, a.lint).cmp(&(b.line, b.col, b.lint)));
    out
}

/// Per-lint finding counts plus the total, as the `--json` summary
/// object (the `bench_points`-style flat record future PRs can diff to
/// track suppression growth).
pub fn json_summary(diags: &[Diagnostic]) -> String {
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for name in lints::LINT_NAMES {
        counts.insert(name, 0);
    }
    for d in diags {
        *counts.entry(d.lint).or_insert(0) += 1;
    }
    let mut body = format!("\"total\": {}", diags.len());
    for (name, count) in counts {
        body.push_str(&format!(", \"{name}\": {count}"));
    }
    format!("{{{body}}}")
}

/// Locates the workspace root: walks up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}
