//! The invariant passes: one per contract family the workspace promises
//! in tests and docs but — before this crate — enforced nowhere.
//!
//! | lint | invariant |
//! |---|---|
//! | `safety-comment` | every `unsafe` argues its soundness in a `// SAFETY:` comment (or `# Safety` doc section) |
//! | `safety-stub` | a `// SAFETY: TODO…` stub from `--fix-safety-stubs` still needs a real argument |
//! | `ordering-comment` | every atomic `Ordering::…` in the scheduler files carries a `// ORDERING:` justification |
//! | `no-panic` | no `.unwrap()` / `.expect(` / `panic!` in library code without a `// PANIC-OK:` tag |
//! | `determinism` | no wall-clock (`Instant`, `std::time`) or hash-order types (`HashMap`/`HashSet`) in the numeric core |
//! | `knobs-registry` | every `ADERDG_*` env var read in source appears in `docs/KNOBS.md`, and vice versa |
//!
//! See `docs/LINTS.md` for the full rationale and the suppression
//! syntax of each pass.

use crate::lex::TokKind;
use crate::{Diagnostic, Project, SourceFile};
use std::collections::BTreeMap;

/// Every lint name, in reporting order (drives the `--json` summary so
/// zero-count lints still show up).
pub const LINT_NAMES: &[&str] = &[
    "safety-comment",
    "safety-stub",
    "ordering-comment",
    "no-panic",
    "determinism",
    "knobs-registry",
];

/// Files whose atomic orderings carry the scheduler's correctness — the
/// scope of `ordering-comment`.
const ORDERING_FILES: &[&str] = &[
    "crates/core/src/pool.rs",
    "crates/core/src/par.rs",
    "crates/core/src/jobs.rs",
];

/// Module prefixes forming the bit-deterministic numeric core — the
/// scope of `determinism`.
const NUMERIC_CORE: &[&str] = &[
    "crates/tensor/src/",
    "crates/quadrature/src/",
    "crates/gemm/src/",
    "crates/pde/src/",
    "crates/mesh/src/",
    "crates/core/src/",
];

/// Probe-tuning files allowlisted from `determinism`: they time real
/// hardware by design, and their measurements only ever *pick between
/// bit-identical implementations*.
const DETERMINISM_ALLOW: &[&str] = &["crates/core/src/tune.rs", "crates/gemm/src/backend.rs"];

/// A lint pass: per-file checks plus an optional whole-project pass.
pub trait Pass {
    /// The lint name as reported in diagnostics.
    fn name(&self) -> &'static str;
    /// Checks one lexed file.
    fn check_file(&mut self, file: &SourceFile, out: &mut Vec<Diagnostic>);
    /// Runs once after every file was checked (cross-file lints).
    fn finish(&mut self, _project: &Project, _out: &mut Vec<Diagnostic>) {}
}

/// Builds the full pass list, in [`LINT_NAMES`] order.
pub fn all_passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(SafetyComments),
        Box::new(OrderingComments),
        Box::new(NoPanic),
        Box::new(Determinism),
        Box::new(KnobsRegistry::default()),
    ]
}

/// True when the file is test/bench/example collateral rather than
/// shipped library or binary code.
fn is_test_collateral(rel: &str) -> bool {
    rel.starts_with("tests/")
        || rel.contains("/tests/")
        || rel.starts_with("benches/")
        || rel.contains("/benches/")
        || rel.starts_with("examples/")
        || rel.contains("/examples/")
        || rel.starts_with("crates/bench/")
}

/// `safety-comment` / `safety-stub`: every `unsafe` keyword — block,
/// fn, impl or trait — must be annotated with a `// SAFETY:` comment
/// (or a `# Safety` doc section for declarations), and the annotation
/// must not be a generated TODO stub.
struct SafetyComments;

impl Pass for SafetyComments {
    fn name(&self) -> &'static str {
        "safety-comment"
    }

    fn check_file(&mut self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        for (i, t) in file.toks.iter().enumerate() {
            if !t.is_ident("unsafe") {
                continue;
            }
            match file.tag_near(i, &["SAFETY:", "# Safety"]) {
                None => out.push(file.diag(
                    "safety-comment",
                    i,
                    "`unsafe` without a `// SAFETY:` comment",
                    "argue the soundness in a `// SAFETY:` comment directly above \
                     (docs/LINTS.md#safety-comment); `--fix-safety-stubs` inserts TODO stubs",
                )),
                Some(tag) if tag.text.contains("TODO") => out.push(file.diag(
                    "safety-stub",
                    i,
                    "`unsafe` annotated only with a TODO stub",
                    "replace the stub with a real soundness argument \
                     (docs/LINTS.md#safety-stub)",
                )),
                Some(_) => {}
            }
        }
    }
}

/// `ordering-comment`: in the scheduler files, every atomic memory
/// ordering must carry a nearby `// ORDERING:` justification.
struct OrderingComments;

impl Pass for OrderingComments {
    fn name(&self) -> &'static str {
        "ordering-comment"
    }

    fn check_file(&mut self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if !ORDERING_FILES.contains(&file.rel.as_str()) {
            return;
        }
        let toks = &file.toks;
        for i in 0..toks.len() {
            if !toks[i].is_ident("Ordering") || file.in_test(i) {
                continue;
            }
            // Match `Ordering` `::` `<mode>` with comments allowed in
            // between (the lexer keeps them in-stream).
            let mut rest = toks[i + 1..].iter().filter(|t| !t.is_comment());
            let (c1, c2, mode) = (rest.next(), rest.next(), rest.next());
            let is_path =
                c1.is_some_and(|t| t.is_punct(':')) && c2.is_some_and(|t| t.is_punct(':'));
            let Some(mode) = mode else { continue };
            if !is_path
                || !matches!(
                    mode.text.as_str(),
                    "Relaxed" | "Acquire" | "Release" | "AcqRel" | "SeqCst"
                )
            {
                continue;
            }
            if file.tag_near(i, &["ORDERING:"]).is_none() {
                out.push(file.diag(
                    "ordering-comment",
                    i,
                    format!(
                        "`Ordering::{}` without a `// ORDERING:` justification",
                        mode.text
                    ),
                    "explain why this ordering suffices in a `// ORDERING:` comment on or \
                     above this statement (docs/LINTS.md#ordering-comment)",
                ));
            }
        }
    }
}

/// `no-panic`: library code must not `.unwrap()`, `.expect(…)` or
/// `panic!` on reachable paths — convert to a typed error, or tag the
/// site `// PANIC-OK:` with the invariant that makes it unreachable.
struct NoPanic;

impl Pass for NoPanic {
    fn name(&self) -> &'static str {
        "no-panic"
    }

    fn check_file(&mut self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        if is_test_collateral(&file.rel) {
            return;
        }
        let toks = &file.toks;
        let code_before = |i: usize| toks[..i].iter().rev().find(|t| !t.is_comment());
        let code_after = |i: usize| toks[i + 1..].iter().find(|t| !t.is_comment());
        for i in 0..toks.len() {
            if file.in_test(i) {
                continue;
            }
            let t = &toks[i];
            let what = if (t.is_ident("unwrap") || t.is_ident("expect"))
                && code_before(i).is_some_and(|p| p.is_punct('.'))
                && code_after(i).is_some_and(|n| n.is_punct('('))
            {
                format!(".{}(…)", t.text)
            } else if t.is_ident("panic") && code_after(i).is_some_and(|n| n.is_punct('!')) {
                "panic!".to_string()
            } else {
                continue;
            };
            if file.tag_near(i, &["PANIC-OK:"]).is_none() {
                out.push(file.diag(
                    "no-panic",
                    i,
                    format!("`{what}` in library code"),
                    "return a typed error, or tag the site `// PANIC-OK: <why this cannot \
                     fire / why aborting is right>` (docs/LINTS.md#no-panic)",
                ));
            }
        }
    }
}

/// `determinism`: the numeric core must stay hermetic and bit-stable —
/// no wall-clock reads, and no containers whose iteration order depends
/// on hasher state.
struct Determinism;

impl Pass for Determinism {
    fn name(&self) -> &'static str {
        "determinism"
    }

    fn check_file(&mut self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        let rel = file.rel.as_str();
        if !NUMERIC_CORE.iter().any(|p| rel.starts_with(p))
            || DETERMINISM_ALLOW.contains(&rel)
            || is_test_collateral(rel)
        {
            return;
        }
        let toks = &file.toks;
        let code_before = |i: usize| toks[..i].iter().rev().find(|t| !t.is_comment());
        let code_after = |i: usize| toks[i + 1..].iter().find(|t| !t.is_comment());
        for i in 0..toks.len() {
            if file.in_test(i) {
                continue;
            }
            let t = &toks[i];
            let (what, why) = if t.is_ident("Instant") || t.is_ident("SystemTime") {
                (t.text.as_str(), "wall-clock reads break hermetic replay")
            } else if t.is_ident("time")
                && code_before(i).is_some_and(|p| p.is_punct(':'))
                && !code_after(i).is_some_and(|n| n.is_punct(':'))
            {
                // A bare `std::time` module use; `std::time::Duration`
                // (plain data, no clock) resolves through the ident
                // rules above instead.
                ("std::time", "wall-clock reads break hermetic replay")
            } else if t.is_ident("HashMap") || t.is_ident("HashSet") {
                (
                    t.text.as_str(),
                    "hash iteration order is nondeterministic across runs",
                )
            } else {
                continue;
            };
            if file.tag_near(i, &["DETERMINISM-OK:"]).is_none() {
                out.push(file.diag(
                    "determinism",
                    i,
                    format!("`{what}` in a numeric-core module ({why})"),
                    "use BTreeMap/BTreeSet or pass timings in as data; if provably \
                     result-neutral, tag `// DETERMINISM-OK: <why>` \
                     (docs/LINTS.md#determinism)",
                ));
            }
        }
    }
}

/// `knobs-registry`: cross-checks every `ADERDG_*` string literal in
/// source against the canonical table in `docs/KNOBS.md`, both ways.
#[derive(Default)]
struct KnobsRegistry {
    /// First read site per knob: var → (path, line, col).
    reads: BTreeMap<String, (String, u32, u32)>,
}

/// True for a complete `ADERDG_*` env-var name (the exact-literal form
/// `env::var("ADERDG_X")` reads use; prose mentioning a knob inside a
/// longer message does not count as a read).
fn is_knob_name(s: &str) -> bool {
    s.strip_prefix("ADERDG_").is_some_and(|rest| {
        !rest.is_empty()
            && rest
                .chars()
                .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
    })
}

impl Pass for KnobsRegistry {
    fn name(&self) -> &'static str {
        "knobs-registry"
    }

    fn check_file(&mut self, file: &SourceFile, _out: &mut Vec<Diagnostic>) {
        for t in &file.toks {
            if t.kind != TokKind::Str {
                continue;
            }
            let Some(content) = t.str_content() else {
                continue;
            };
            if is_knob_name(content) {
                self.reads
                    .entry(content.to_string())
                    .or_insert_with(|| (file.rel.clone(), t.line, t.col));
            }
        }
    }

    fn finish(&mut self, project: &Project, out: &mut Vec<Diagnostic>) {
        const REGISTRY: &str = "docs/KNOBS.md";
        let Ok(text) = std::fs::read_to_string(project.root.join(REGISTRY)) else {
            out.push(Diagnostic {
                lint: "knobs-registry",
                path: REGISTRY.to_string(),
                line: 1,
                col: 1,
                message: "docs/KNOBS.md is missing — the ADERDG_* knob registry has \
                          nowhere to live"
                    .to_string(),
                help: "create docs/KNOBS.md with one table row per `ADERDG_*` knob \
                       (docs/LINTS.md#knobs-registry)"
                    .to_string(),
            });
            return;
        };
        // Registry rows: markdown table lines whose first backticked
        // span is the knob name.
        let mut documented: BTreeMap<String, u32> = BTreeMap::new();
        for (n, line) in text.lines().enumerate() {
            if !line.trim_start().starts_with('|') {
                continue;
            }
            for span in line.split('`').skip(1).step_by(2) {
                let name = span.trim_end_matches(['=', '*']);
                if is_knob_name(name) {
                    documented.entry(name.to_string()).or_insert(n as u32 + 1);
                }
            }
        }
        for (var, (path, line, col)) in &self.reads {
            if !documented.contains_key(var) {
                out.push(Diagnostic {
                    lint: "knobs-registry",
                    path: path.clone(),
                    line: *line,
                    col: *col,
                    message: format!("env var `{var}` is read here but missing from docs/KNOBS.md"),
                    help: format!(
                        "add a `{var}` row to the table in docs/KNOBS.md \
                         (docs/LINTS.md#knobs-registry)"
                    ),
                });
            }
        }
        for (var, line) in &documented {
            if !self.reads.contains_key(var) {
                out.push(Diagnostic {
                    lint: "knobs-registry",
                    path: REGISTRY.to_string(),
                    line: *line,
                    col: 1,
                    message: format!(
                        "`{var}` is documented in docs/KNOBS.md but never read in source"
                    ),
                    help: "remove the stale row, or wire the knob back up \
                           (docs/LINTS.md#knobs-registry)"
                        .to_string(),
                });
            }
        }
    }
}
