//! A minimal Rust tokenizer for the invariant lints.
//!
//! This is deliberately **not** a parser: the project lints only need to
//! know *where keywords, identifiers, punctuation and comments are* —
//! and, crucially, to never mistake the contents of a string literal or
//! a comment for code (an `unsafe` inside a doc example or an error
//! message must not trip the safety lint). The lexer therefore handles
//! the full literal surface of stable Rust:
//!
//! * line comments (`//`, `///`, `//!`) and nested block comments
//!   (`/* /* */ */`, `/** */`),
//! * string literals with escapes (`"a \" b"`), byte strings (`b".."`),
//!   C strings (`c".."`),
//! * raw strings with any hash depth (`r"..."`, `r#".."#`, `br##".."##`),
//! * char literals incl. escapes (`'\u{1F600}'`, `b'\n'`) vs. lifetimes
//!   (`'a`, `'static`, `'_`),
//! * identifiers, numbers, and single-character punctuation.
//!
//! Every token carries its 1-based `line:col` so diagnostics point at
//! real source locations.

/// What kind of lexeme a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `Ordering`, `unwrap`, …).
    Ident,
    /// One punctuation character (`.`, `:`, `{`, `!`, …).
    Punct(char),
    /// String literal of any flavour (escaped, raw, byte, C).
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`, `'_`).
    Lifetime,
    /// Numeric literal (integer part only; `1.5` lexes as `1` `.` `5`,
    /// which is all the lints need).
    Num,
    /// Comment. `line` distinguishes `//`-style from block comments.
    Comment {
        /// True for `//`-style comments, false for `/* */` blocks.
        line: bool,
    },
}

/// One lexeme with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Tok {
    /// The lexeme kind.
    pub kind: TokKind,
    /// The raw source text of the lexeme (including quotes/prefixes for
    /// literals and the comment markers for comments).
    pub text: String,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column of the first character.
    pub col: u32,
}

impl Tok {
    /// True for comment tokens.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::Comment { .. })
    }

    /// True for an identifier with exactly this text.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// True for this punctuation character.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct(ch)
    }

    /// The contents of a string literal with prefix, hashes and quotes
    /// stripped (`r#"x"#` → `x`); `None` for non-string tokens.
    pub fn str_content(&self) -> Option<&str> {
        if self.kind != TokKind::Str {
            return None;
        }
        let s = self.text.trim_start_matches(['b', 'r', 'c']);
        let s = s.trim_start_matches('#');
        let s = s.strip_prefix('"')?;
        let s = s.trim_end_matches('#');
        s.strip_suffix('"')
    }
}

/// Cursor over the source with line/column tracking.
struct Cursor<'s> {
    src: &'s [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'s> Cursor<'s> {
    fn peek(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if b & 0xC0 != 0x80 {
            // Count one column per character, not per UTF-8 byte.
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// True when the bytes at the cursor start a raw/byte/C string literal,
/// returning the prefix length up to (not including) the opening hashes
/// or quote.
fn string_prefix(c: &Cursor<'_>) -> Option<usize> {
    // Longest first: `br`, `rb` do not exist (only `br`), `cr` does not
    // exist; the stable prefixes are r, b, br, c and their raw forms.
    for pre in [&b"br"[..], b"r", b"b", b"c"] {
        if c.src[c.pos..].starts_with(pre) {
            let rest = &c.src[c.pos + pre.len()..];
            let mut i = 0;
            // Raw strings: optional hashes then a quote. Non-raw (`b`,
            // `c`): quote must follow the prefix directly.
            let raw = pre.ends_with(b"r");
            while raw && rest.get(i) == Some(&b'#') {
                i += 1;
            }
            if rest.get(i) == Some(&b'"') && (raw || i == 0) {
                return Some(pre.len());
            }
        }
    }
    None
}

/// Tokenizes `src`. Unterminated literals/comments end their token at
/// end of input rather than erroring — the lints degrade gracefully on
/// code that would not compile anyway.
pub fn lex(src: &str) -> Vec<Tok> {
    let mut c = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut toks = Vec::new();
    while let Some(b) = c.peek(0) {
        let (line, col, start) = (c.line, c.col, c.pos);
        let push = |c: &Cursor<'_>, toks: &mut Vec<Tok>, kind: TokKind| {
            toks.push(Tok {
                kind,
                text: src[start..c.pos].to_string(),
                line,
                col,
            });
        };
        match b {
            b if b.is_ascii_whitespace() => {
                c.bump();
            }
            b'/' if c.peek(1) == Some(b'/') => {
                while c.peek(0).is_some_and(|b| b != b'\n') {
                    c.bump();
                }
                push(&c, &mut toks, TokKind::Comment { line: true });
            }
            b'/' if c.peek(1) == Some(b'*') => {
                c.bump();
                c.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (c.peek(0), c.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            c.bump();
                            c.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            c.bump();
                            c.bump();
                        }
                        (Some(_), _) => {
                            c.bump();
                        }
                        (None, _) => break,
                    }
                }
                push(&c, &mut toks, TokKind::Comment { line: false });
            }
            b'"' => {
                lex_quoted(&mut c);
                push(&c, &mut toks, TokKind::Str);
            }
            _ if string_prefix(&c).is_some() => {
                let pre = string_prefix(&c).unwrap_or(0);
                let raw = c.src[c.pos..c.pos + pre].ends_with(b"r");
                for _ in 0..pre {
                    c.bump();
                }
                if raw {
                    let mut hashes = 0usize;
                    while c.peek(0) == Some(b'#') {
                        hashes += 1;
                        c.bump();
                    }
                    c.bump(); // opening quote
                    'raw: while let Some(b) = c.bump() {
                        if b == b'"' {
                            for h in 0..hashes {
                                if c.peek(h) != Some(b'#') {
                                    continue 'raw;
                                }
                            }
                            for _ in 0..hashes {
                                c.bump();
                            }
                            break;
                        }
                    }
                } else {
                    lex_quoted(&mut c);
                }
                push(&c, &mut toks, TokKind::Str);
            }
            b'b' if c.peek(1) == Some(b'\'') => {
                c.bump();
                lex_char(&mut c);
                push(&c, &mut toks, TokKind::Char);
            }
            b'\'' => {
                // Lifetime (`'a`, `'_`) vs char literal (`'a'`, `'\n'`).
                let one = c.peek(1);
                let two = c.peek(2);
                let is_lifetime =
                    one.is_some_and(is_ident_start) && one != Some(b'\\') && two != Some(b'\'');
                if is_lifetime {
                    c.bump();
                    while c.peek(0).is_some_and(is_ident_cont) {
                        c.bump();
                    }
                    push(&c, &mut toks, TokKind::Lifetime);
                } else {
                    lex_char(&mut c);
                    push(&c, &mut toks, TokKind::Char);
                }
            }
            b if is_ident_start(b) => {
                while c.peek(0).is_some_and(is_ident_cont) {
                    c.bump();
                }
                push(&c, &mut toks, TokKind::Ident);
            }
            b if b.is_ascii_digit() => {
                while c.peek(0).is_some_and(is_ident_cont) {
                    c.bump();
                }
                push(&c, &mut toks, TokKind::Num);
            }
            _ => {
                c.bump();
                push(&c, &mut toks, TokKind::Punct(b as char));
            }
        }
    }
    toks
}

/// Consumes a `"`-delimited literal (cursor on the opening quote),
/// honouring `\"` and `\\` escapes.
fn lex_quoted(c: &mut Cursor<'_>) {
    c.bump();
    while let Some(b) = c.bump() {
        match b {
            b'\\' => {
                c.bump();
            }
            b'"' => break,
            _ => {}
        }
    }
}

/// Consumes a `'`-delimited char literal (cursor on the opening quote),
/// honouring escapes like `'\''` and `'\u{..}'`.
fn lex_char(c: &mut Cursor<'_>) {
    c.bump();
    while let Some(b) = c.bump() {
        match b {
            b'\\' => {
                c.bump();
            }
            b'\'' => break,
            b'\n' => break, // stray quote, not a literal — stop at EOL
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_punct_numbers() {
        let toks = lex("let x = 42;");
        assert_eq!(toks.len(), 5);
        assert!(toks[0].is_ident("let"));
        assert!(toks[1].is_ident("x"));
        assert!(toks[2].is_punct('='));
        assert_eq!(toks[3].kind, TokKind::Num);
        assert!(toks[4].is_punct(';'));
    }

    #[test]
    fn unsafe_in_string_and_comment_is_not_an_ident() {
        let toks = lex(r#"let s = "unsafe {"; // unsafe here too"#);
        assert!(!toks.iter().any(|t| t.is_ident("unsafe")));
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
        assert_eq!(toks.iter().filter(|t| t.is_comment()).count(), 1);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = "let s = r##\"a \"# unsafe \"##; x";
        let toks = lex(src);
        let s = toks.iter().find(|t| t.kind == TokKind::Str).expect("str");
        assert_eq!(s.str_content(), Some("a \"# unsafe "));
        assert!(toks.last().is_some_and(|t| t.is_ident("x")));
    }

    #[test]
    fn byte_and_c_strings() {
        assert_eq!(kinds(r#"b"x""#), vec![TokKind::Str]);
        assert_eq!(kinds(r#"c"x""#), vec![TokKind::Str]);
        assert_eq!(kinds(r##"br#"x"#"##), vec![TokKind::Str]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("a /* x /* y */ z */ b");
        assert_eq!(toks.len(), 3);
        assert!(toks[1].is_comment());
        assert!(toks[2].is_ident("b"));
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let toks = lex("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn float_range_does_not_swallow_dots() {
        // `0..n` and `1.5` both keep their dots as punct tokens.
        let toks = lex("for i in 0..n { x = 1.5; }");
        assert_eq!(toks.iter().filter(|t| t.is_punct('.')).count(), 3);
    }
}
