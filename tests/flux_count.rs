//! The once-per-face contract, measured: the sharded pipeline performs
//! `interior + boundary` Riemann solves per step (eq. 5 — one per face),
//! where the cell-centric barrier path performs `6 · cells` (every
//! interior face twice).
//!
//! Uses the debug-build flux-solve counter in `aderdg::core::riemann`;
//! the counter is process-global, so all assertions live in this one
//! test function (integration-test files run as their own process).

use aderdg::core::riemann::{
    flux_solve_count, flux_solve_counting_enabled, reset_flux_solve_count,
};
use aderdg::core::{Engine, EngineConfig, PipelineMode, SteppingMode};
use aderdg::mesh::{BoundaryKind, StructuredMesh};
use aderdg::pde::Acoustic;

fn step_solves(config: EngineConfig, mesh: StructuredMesh) -> usize {
    let mut engine = Engine::new(mesh, Acoustic, config);
    engine.set_initial(|x, q| {
        q[0] = (x[0] * 3.0 + x[1]).sin();
        q[1] = 0.1 * x[2];
        q[2] = 0.0;
        q[3] = 0.0;
        Acoustic::set_params(q, 1.0, 1.0);
    });
    let dt = engine.max_dt() * 0.5;
    engine.step(dt); // warm-up step outside the counted window
    reset_flux_solve_count();
    engine.step(dt);
    flux_solve_count()
}

#[test]
fn sharded_step_solves_each_face_exactly_once() {
    if !flux_solve_counting_enabled() {
        eprintln!("flux-solve counter disabled (release build); skipping");
        return;
    }

    // Fully periodic cube: 3·cells interior faces, no boundary. The
    // counts are a *pipeline* contract, so pin `stepping = global`
    // against the `ADERDG_STEPPING=lts` CI leg (under which `pipeline`
    // is ignored and the barrier count would never materialize).
    let cells = 27;
    let barrier = step_solves(
        EngineConfig::new(3)
            .with_stepping(SteppingMode::Global)
            .with_pipeline(PipelineMode::Barrier),
        StructuredMesh::unit_cube(3),
    );
    assert_eq!(
        barrier,
        6 * cells,
        "cell-centric path: two solves per interior face"
    );
    let sharded = step_solves(
        EngineConfig::new(3)
            .with_stepping(SteppingMode::Global)
            .with_pipeline(PipelineMode::Sharded)
            .with_shard_size(4),
        StructuredMesh::unit_cube(3),
    );
    assert_eq!(
        sharded,
        3 * cells,
        "once-per-face path halves the interior solves"
    );
    // Degenerate LTS (uniform medium ⇒ one cluster, one slot per macro
    // cycle) inherits the once-per-face count exactly.
    let lts = step_solves(
        EngineConfig::new(3)
            .with_stepping(SteppingMode::Lts)
            .with_shard_size(4),
        StructuredMesh::unit_cube(3),
    );
    assert_eq!(lts, 3 * cells, "degenerate LTS solves each face once");

    // Mixed boundaries: interior + boundary faces, straight from the
    // shard plan's canonical face index.
    let mesh = StructuredMesh::new(
        [3, 2, 2],
        [0.0; 3],
        [1.0; 3],
        [
            BoundaryKind::Outflow,
            BoundaryKind::Reflective,
            BoundaryKind::Periodic,
        ],
    );
    let config = EngineConfig::new(3)
        .with_stepping(SteppingMode::Global)
        .with_pipeline(PipelineMode::Sharded);
    let engine = Engine::new(mesh.clone(), Acoustic, config);
    let splan = engine
        .shard_plan()
        .expect("sharded engine has a shard plan");
    let expected = splan.num_interior_faces() + splan.num_boundary_faces();
    drop(engine);
    let sharded = step_solves(config, mesh.clone());
    assert_eq!(sharded, expected, "one solve per canonical face");
    let barrier = step_solves(config.with_pipeline(PipelineMode::Barrier), mesh);
    assert_eq!(barrier, 6 * 12, "barrier path visits every cell slot");
    assert!(sharded < barrier);
}
