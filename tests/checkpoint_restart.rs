//! Checkpoint/restart battery: a saved engine state must restore
//! bit-identically and a paused-then-resumed run must be
//! indistinguishable — to the last bit of every DOF, series point and
//! receiver record — from one that never stopped. Exercised across
//! kernels × pipelines × pool modes, because serialization must not
//! care how the bits were produced; plus rejection of corrupt files and
//! the degenerate-dt error path.

use aderdg::core::checkpoint::Checkpoint;
use aderdg::core::par::{self, PoolMode};
use aderdg::core::registry::KernelRegistry;
use aderdg::core::scenario::{
    drive, RunControl, RunRequest, RunSummary, Scenario, ScenarioError, ScenarioInfo,
    ScenarioParts, ScenarioRegistry,
};
use aderdg::core::tune::TuningMode;
use aderdg::core::{Engine, EngineConfig, PipelineMode, SteppingMode};
use aderdg::mesh::StructuredMesh;
use aderdg::pde::{Acoustic, AdvectionSystem};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// The pool knobs are process-global; serialize the tests that flip them.
static THREAD_KNOB: Mutex<()> = Mutex::new(());

fn seeded_engine(kernel: &str, pipeline: PipelineMode) -> Engine<Acoustic> {
    let config = EngineConfig::new(3)
        .with_kernel(
            KernelRegistry::global()
                .resolve(kernel)
                .unwrap_or_else(|| panic!("kernel `{kernel}` not registered")),
        )
        .with_tuning(TuningMode::Static)
        .with_pipeline(pipeline);
    let mesh = StructuredMesh::unit_cube(3);
    let mut engine = Engine::new(mesh, Acoustic, config);
    engine.set_initial(|x, q| {
        let s = (x[0] * 12.9898 + x[1] * 78.233 + x[2] * 37.719).sin();
        q[0] = 0.1 * s;
        q[1] = 0.05 * (x[0] * 3.0).cos();
        q[2] = 0.0;
        q[3] = 0.02 * s * s;
        Acoustic::set_params(q, 1.0 + 0.2 * x[2], 1.0);
    });
    engine.add_receiver([0.4, 0.55, 0.6]);
    engine
}

fn state_bits(engine: &Engine<Acoustic>) -> Vec<u64> {
    (0..engine.mesh.num_cells())
        .flat_map(|c| engine.cell_state(c).iter().map(|v| v.to_bits()))
        .collect()
}

/// Engine-level round trip: save mid-run, restore into a freshly built
/// engine, and both the restored state and its *future* (two more steps)
/// must be bit-identical — across two kernels, both pipelines and both
/// pool modes, since the codec must not care how the bits were produced.
#[test]
fn engine_state_round_trips_bit_identically_and_continues() {
    let _guard = THREAD_KNOB.lock().unwrap();
    let mode_before = par::pool_mode();
    for pool in [PoolMode::Persistent, PoolMode::Scoped] {
        par::set_pool_mode(pool);
        for kernel in ["generic", "aosoa_splitck"] {
            for pipeline in [PipelineMode::Barrier, PipelineMode::Sharded] {
                let label = format!("{kernel}/{pipeline:?}/{pool:?}");
                let mut original = seeded_engine(kernel, pipeline);
                let dt = original.max_dt() * 0.5;
                original.step(dt);
                original.step(dt);
                let saved = original.save_state();

                let mut restored = seeded_engine(kernel, pipeline);
                restored.restore_state(&saved).expect("restore");
                assert_eq!(restored.time.to_bits(), original.time.to_bits(), "{label}");
                assert_eq!(restored.steps, original.steps, "{label}");
                assert_eq!(
                    state_bits(&restored),
                    state_bits(&original),
                    "{label}: restored DOFs differ"
                );

                // The restored engine's future must match too.
                original.step(dt);
                original.step(dt);
                restored.step(dt);
                restored.step(dt);
                assert_eq!(
                    state_bits(&restored),
                    state_bits(&original),
                    "{label}: evolution diverges after restore"
                );
                assert_eq!(
                    original.receivers.len(),
                    restored.receivers.len(),
                    "{label}"
                );
                for (a, b) in original.receivers.iter().zip(&restored.receivers) {
                    assert_eq!(a.records, b.records, "{label}: receiver traces differ");
                }
            }
        }
    }
    par::set_pool_mode(mode_before);
}

/// LTS engine-level round trip: the checkpoint must carry the
/// per-cluster clocks, and a restored engine must rebuild the identical
/// clustering from the restored state — so both the restored clocks and
/// the *future* (two more macro cycles) are bit-identical. The layered
/// bulk makes the run genuinely multi-level.
#[test]
fn lts_state_round_trips_with_cluster_clocks_and_continues() {
    let _guard = THREAD_KNOB.lock().unwrap();
    let seeded = || {
        let config = EngineConfig::new(3)
            .with_tuning(TuningMode::Static)
            .with_stepping(SteppingMode::Lts);
        let mesh = StructuredMesh::new(
            [4, 3, 3],
            [0.0; 3],
            [1.0; 3],
            [aderdg::mesh::BoundaryKind::Reflective; 3],
        );
        let mut engine = Engine::new(mesh, Acoustic, config);
        engine.set_initial(|x, q| {
            q.fill(0.0);
            let r2: f64 = x.iter().map(|&c| (c - 0.6) * (c - 0.6)).sum();
            q[0] = (-r2 / (2.0 * 0.2 * 0.2)).exp();
            let bulk = if x[0] < 0.5 { 4.0 } else { 1.0 };
            Acoustic::set_params(q, 1.0, bulk);
        });
        engine.add_receiver([0.7, 0.5, 0.5]);
        engine
    };
    let mut original = seeded();
    let dt = original.max_dt() * 0.5;
    original.step(dt);
    original.step(dt);
    assert!(
        original.lts_clocks().len() >= 2,
        "layered medium must produce multi-level clustering"
    );
    let saved = original.save_state();

    let mut restored = seeded();
    restored.restore_state(&saved).expect("restore");
    assert_eq!(restored.steps, original.steps);
    assert_eq!(
        restored.lts_clocks().len(),
        original.lts_clocks().len(),
        "cluster clock count differs after restore"
    );
    for (level, (a, b)) in original
        .lts_clocks()
        .iter()
        .zip(restored.lts_clocks())
        .enumerate()
    {
        assert_eq!(a.0.to_bits(), b.0.to_bits(), "level {level} clock time");
        assert_eq!(a.1, b.1, "level {level} sub-step count");
    }
    assert_eq!(
        state_bits(&restored),
        state_bits(&original),
        "restored DOFs differ"
    );

    original.step(dt);
    original.step(dt);
    restored.step(dt);
    restored.step(dt);
    assert_eq!(
        state_bits(&restored),
        state_bits(&original),
        "LTS evolution diverges after restore"
    );
    for (a, b) in original.receivers.iter().zip(&restored.receivers) {
        assert_eq!(a.records, b.records, "receiver traces differ");
    }
}

fn tmp(label: &str) -> PathBuf {
    std::env::temp_dir().join(format!("aderdg-ckpt-{}-{label}.ckpt", std::process::id()))
}

fn base_request(kernel: &str, pipeline: &str) -> RunRequest {
    let mut req = RunRequest::smoke();
    // Static tuning: probe would re-time block sizes on the resumed run.
    for (key, value) in [
        ("kernel", kernel),
        ("pipeline", pipeline),
        ("tuning", "static"),
    ] {
        assert!(req.set(key, value).unwrap(), "unknown key {key}");
    }
    req
}

fn run(req: RunRequest) -> RunSummary {
    ScenarioRegistry::global()
        .resolve("acoustic_wave")
        .expect("acoustic_wave registered")
        .run(&req)
        .expect("run succeeds")
}

/// Scenario-level round trip through real files: pause at step 1 into a
/// checkpoint, resume it, and the final checkpoint must be byte-for-byte
/// identical to one saved by a run that was never interrupted — for two
/// kernels × both pipelines.
#[test]
fn paused_and_resumed_run_matches_uninterrupted_bit_for_bit() {
    for kernel in ["generic", "splitck"] {
        for pipeline in ["barrier", "sharded"] {
            let label = format!("{kernel}-{pipeline}");
            let full_ck = tmp(&format!("{label}-full"));
            let pause_ck = tmp(&format!("{label}-pause"));
            let resumed_ck = tmp(&format!("{label}-resumed"));

            // Uninterrupted reference.
            let mut req = base_request(kernel, pipeline);
            req.save_checkpoint = Some(full_ck.clone());
            let full = run(req);
            assert!(!full.paused);

            // Pause at step 1, checkpoint, resume to the end.
            let mut req = base_request(kernel, pipeline);
            req.save_checkpoint = Some(pause_ck.clone());
            let control = Arc::new(RunControl::new());
            control.pause_at_step(1);
            req.control = Some(control);
            let paused = run(req);
            assert!(paused.paused, "{label}: run did not pause");
            assert_eq!(paused.steps, 1, "{label}");

            let ck = Checkpoint::load(&pause_ck).expect("load pause checkpoint");
            let mut req = ck.to_request().expect("replay knobs");
            req.save_checkpoint = Some(resumed_ck.clone());
            req.resume = Some(Arc::new(ck));
            let resumed = run(req);
            assert!(!resumed.paused, "{label}: resume did not finish");

            let full_bytes = std::fs::read(&full_ck).unwrap();
            let resumed_bytes = std::fs::read(&resumed_ck).unwrap();
            assert_eq!(
                full_bytes, resumed_bytes,
                "{label}: resumed checkpoint differs from the uninterrupted one"
            );
            // The summaries' series agree too (same data, pre-file).
            assert_eq!(full.steps, resumed.steps, "{label}");
            for (a, b) in full.series.iter().zip(&resumed.series) {
                assert_eq!(a.t.to_bits(), b.t.to_bits(), "{label}");
                assert_eq!(a.l2_norm.to_bits(), b.l2_norm.to_bits(), "{label}");
            }
            for path in [&full_ck, &pause_ck, &resumed_ck] {
                let _ = std::fs::remove_file(path);
            }
        }
    }
}

/// LTS scenario-level round trip through real files on the layered
/// medium: the checkpoint codec carries the per-cluster clocks, so a run
/// paused mid-way through a clustered schedule and resumed must produce
/// a checkpoint byte-for-byte identical to the uninterrupted reference.
#[test]
fn lts_paused_and_resumed_run_matches_uninterrupted_bit_for_bit() {
    let scenario = ScenarioRegistry::global()
        .resolve("acoustic_layered")
        .expect("acoustic_layered registered");
    let run = |req: RunRequest| scenario.run(&req).expect("run succeeds");
    let lts_request = || {
        let mut req = base_request("splitck", "sharded");
        assert!(req.set("stepping", "lts").unwrap(), "unknown key stepping");
        req
    };
    let full_ck = tmp("lts-full");
    let pause_ck = tmp("lts-pause");
    let resumed_ck = tmp("lts-resumed");

    // Uninterrupted reference.
    let mut req = lts_request();
    req.save_checkpoint = Some(full_ck.clone());
    let full = run(req);
    assert!(!full.paused);

    // Pause after one macro cycle, checkpoint, resume to the end.
    let mut req = lts_request();
    req.save_checkpoint = Some(pause_ck.clone());
    let control = Arc::new(RunControl::new());
    control.pause_at_step(1);
    req.control = Some(control);
    let paused = run(req);
    assert!(paused.paused, "run did not pause");
    assert_eq!(paused.steps, 1);

    let ck = Checkpoint::load(&pause_ck).expect("load pause checkpoint");
    let mut req = ck.to_request().expect("replay knobs");
    req.save_checkpoint = Some(resumed_ck.clone());
    req.resume = Some(Arc::new(ck));
    let resumed = run(req);
    assert!(!resumed.paused, "resume did not finish");

    let full_bytes = std::fs::read(&full_ck).unwrap();
    let resumed_bytes = std::fs::read(&resumed_ck).unwrap();
    assert_eq!(
        full_bytes, resumed_bytes,
        "LTS resumed checkpoint differs from the uninterrupted one"
    );
    assert_eq!(full.steps, resumed.steps);
    for (a, b) in full.series.iter().zip(&resumed.series) {
        assert_eq!(a.t.to_bits(), b.t.to_bits());
        assert_eq!(a.l2_norm.to_bits(), b.l2_norm.to_bits());
    }
    for path in [&full_ck, &pause_ck, &resumed_ck] {
        let _ = std::fs::remove_file(path);
    }
}

/// Corrupt and truncated checkpoint files must be rejected with an
/// error — never a panic, never a silently wrong resume.
#[test]
fn corrupt_checkpoint_files_are_rejected_on_load() {
    let path = tmp("corrupt-source");
    let mut req = base_request("generic", "barrier");
    req.save_checkpoint = Some(path.clone());
    run(req);
    let good = std::fs::read(&path).unwrap();
    let _ = std::fs::remove_file(&path);

    let bad = tmp("corrupt-mutant");
    // Truncation at several depths, including mid-header and mid-state.
    for cut in [7, good.len() / 3, good.len() - 5] {
        std::fs::write(&bad, &good[..cut]).unwrap();
        assert!(
            Checkpoint::load(&bad).is_err(),
            "truncation to {cut} bytes must be rejected"
        );
    }
    // A flipped payload byte must fail the checksum.
    let mut flipped = good.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x40;
    std::fs::write(&bad, &flipped).unwrap();
    assert!(Checkpoint::load(&bad).is_err(), "bit flip must be rejected");
    // Not a checkpoint at all.
    std::fs::write(&bad, b"not a checkpoint").unwrap();
    assert!(Checkpoint::load(&bad).is_err());
    let _ = std::fs::remove_file(&bad);
    assert!(Checkpoint::load(&tmp("never-written")).is_err());
}

/// A PDE whose wave speeds are infinite produces `max_dt() == 0`; both
/// drive branches (fixed smoke steps and time-targeted) must surface
/// that as a [`ScenarioError`], not a panic.
struct DegenerateScenario;

impl Scenario for DegenerateScenario {
    fn info(&self) -> ScenarioInfo {
        ScenarioInfo {
            name: "degenerate_dt",
            title: "infinite wave speed (max_dt = 0)",
            system: "advection",
            order: 2,
            cells: [2, 2, 2],
            t_end: 0.1,
            kernel: "generic",
            has_exact: false,
            smoke_cells: [2, 2, 2],
        }
    }

    fn run(&self, req: &RunRequest) -> Result<RunSummary, ScenarioError> {
        drive(
            &self.info(),
            req,
            |dims| StructuredMesh::unit_cube(dims[0]),
            AdvectionSystem::new(1, [f64::INFINITY, 0.0, 0.0]),
            ScenarioParts::new(|_x, q: &mut [f64], _m: &StructuredMesh| q[0] = 1.0),
        )
    }
}

#[test]
fn degenerate_dt_is_an_error_not_a_panic_on_both_branches() {
    // Fixed-steps (smoke) branch.
    let err = DegenerateScenario.run(&RunRequest::smoke()).unwrap_err();
    assert!(
        err.message.contains("degenerate time step"),
        "smoke branch: {err}"
    );
    // Time-targeted branch.
    let err = DegenerateScenario.run(&RunRequest::new()).unwrap_err();
    assert!(
        err.message.contains("degenerate time step"),
        "t_end branch: {err}"
    );
}
