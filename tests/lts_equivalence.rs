//! Local time stepping vs the global-dt paths.
//!
//! Two contracts from `docs/LTS.md`:
//!
//! 1. **Degenerate exactness** — on a dt-homogeneous problem every cell
//!    lands in one cluster, the LTS graph collapses to the sharded
//!    Predict → Flux → Apply chain with `num_slots = 1`, and `stepping =
//!    lts` must reproduce `stepping = global` (sharded pipeline)
//!    **bit-for-bit**: same partition, same once-per-face flux order,
//!    same corrector order, `dt_base = dt / 1` exact. Checked for every
//!    registered kernel, both `pipeline` settings (ignored under LTS),
//!    several shard sizes and 1/4/16 worker threads.
//!
//! 2. **Two-cluster accuracy** — on a 2:1 wave-speed contrast the slow
//!    cells step at `2·dt_base`, composing the coarse predictor's
//!    time-integrated traces into per-sub-window fluxes by differencing
//!    (`window 1 = half run, window 2 = full − half`). Relative to a
//!    global run at the fine dt that is an O(dt²) coupling difference
//!    (see [`two_cluster_diff`]), so the evolved state must match the
//!    fine-dt global run to ≤ 1e-10 at small dt *and* the difference
//!    must shrink at second order under dt refinement — on both acoustic
//!    and shallow-water physics.

use aderdg::core::par::PoolMode;
use aderdg::core::{par, Engine, EngineConfig, KernelRegistry, PipelineMode, SteppingMode};
use aderdg::mesh::{BoundaryKind, StructuredMesh};
use aderdg::pde::{Acoustic, LinearizedSwe, PointSource, SourceTimeFunction};
use std::sync::Mutex;

/// The thread-count override is process-global; serialize the tests that
/// flip it so they cannot interleave.
static THREAD_KNOB: Mutex<()> = Mutex::new(());

/// A small mesh exercising interior, periodic-wrap, outflow and
/// reflective faces at once.
fn mesh() -> StructuredMesh {
    StructuredMesh::new(
        [3, 3, 2],
        [0.0; 3],
        [1.0; 3],
        [
            BoundaryKind::Periodic,
            BoundaryKind::Outflow,
            BoundaryKind::Reflective,
        ],
    )
}

/// Runs three steps of a seeded acoustic problem with a point source on a
/// dt-homogeneous medium (uniform material ⇒ uniform per-cell CFL dt ⇒ a
/// single LTS cluster) and returns the evolved state, bit-exact.
fn run_homogeneous(config: EngineConfig) -> Vec<u64> {
    let mut engine = Engine::new(mesh(), Acoustic, config);
    engine.set_initial(|x, q| {
        let s = (x[0] * 5.1 + x[1] * 2.7 - x[2] * 3.9).sin();
        q[0] = 0.2 * s;
        q[1] = 0.1 * (x[1] * 4.0).cos();
        q[2] = -0.05 * s;
        q[3] = 0.03 * s * s;
        // Uniform material: the acoustic wavespeed depends only on the
        // parameters, so every cell gets the identical stable dt.
        Acoustic::set_params(q, 1.0, 1.0);
    });
    engine.add_point_source(PointSource {
        position: [0.45, 0.52, 0.3],
        amplitude: vec![1.0, 0.0, 0.0, 0.0],
        stf: SourceTimeFunction::Ricker {
            t0: 0.05,
            frequency: 8.0,
        },
    });
    let dt = engine.max_dt() * 0.6;
    assert!(dt.is_finite() && dt > 0.0);
    for _ in 0..3 {
        engine.step(dt);
    }
    (0..engine.mesh.num_cells())
        .flat_map(|c| engine.cell_state(c).iter().map(|v| v.to_bits()))
        .collect()
}

/// Asserts the degenerate LTS run is bit-identical to the global sharded
/// run under `config`'s kernel/shard settings.
fn assert_degenerate_bitwise(base: EngineConfig, label: &str) {
    let global = run_homogeneous(
        base.with_stepping(SteppingMode::Global)
            .with_pipeline(PipelineMode::Sharded),
    );
    assert!(
        global.iter().any(|&b| b != 0),
        "{label}: the run must actually evolve data"
    );
    // `pipeline` is ignored under LTS — both settings must take the same
    // graph path and agree with the global sharded run exactly.
    for pipeline in [PipelineMode::Sharded, PipelineMode::Barrier] {
        let lts = run_homogeneous(
            base.with_stepping(SteppingMode::Lts)
                .with_pipeline(pipeline),
        );
        let diffs = lts.iter().zip(&global).filter(|(a, b)| a != b).count();
        assert_eq!(
            diffs, 0,
            "{label} ({pipeline:?}): {diffs} doubles differ between \
             degenerate LTS and the global sharded run"
        );
    }
}

#[test]
fn degenerate_lts_bitwise_matches_global_for_every_kernel() {
    let _guard = THREAD_KNOB.lock().unwrap();
    for name in KernelRegistry::global().names() {
        assert_degenerate_bitwise(
            EngineConfig::new(3).with_kernel_name(name),
            &format!("kernel {name}"),
        );
    }
}

#[test]
fn degenerate_lts_bitwise_matches_global_across_shard_sizes() {
    let _guard = THREAD_KNOB.lock().unwrap();
    // Auto plus explicit sizes splitting the 18-cell mesh into many
    // shards, one shard, and uneven tails.
    assert_degenerate_bitwise(EngineConfig::new(3), "sharded(auto)");
    for shard_size in [2, 5, 18] {
        assert_degenerate_bitwise(
            EngineConfig::new(3).with_shard_size(shard_size),
            &format!("sharded({shard_size})"),
        );
    }
}

#[test]
fn degenerate_lts_bitwise_matches_global_across_threads_and_pool_modes() {
    let _guard = THREAD_KNOB.lock().unwrap();
    let threads_before = par::num_threads();
    let mode_before = par::pool_mode();
    par::set_num_threads(1);
    par::set_pool_mode(PoolMode::Scoped);
    let config = EngineConfig::new(3).with_shard_size(5);
    let reference = run_homogeneous(
        config
            .with_stepping(SteppingMode::Global)
            .with_pipeline(PipelineMode::Sharded),
    );
    for mode in [PoolMode::Persistent, PoolMode::Scoped] {
        par::set_pool_mode(mode);
        for threads in [1, 4, 16] {
            par::set_num_threads(threads);
            let lts = run_homogeneous(config.with_stepping(SteppingMode::Lts));
            let diffs = lts.iter().zip(&reference).filter(|(a, b)| a != b).count();
            assert_eq!(
                diffs, 0,
                "{diffs} doubles differ between degenerate LTS at {threads} \
                 threads ({mode:?}) and the scoped 1-thread global run"
            );
        }
    }
    par::set_pool_mode(mode_before);
    par::set_num_threads(threads_before);
}

/// Max relative elementwise difference, scaled by the largest magnitude.
fn max_rel_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let scale = a
        .iter()
        .chain(b.iter())
        .fold(0.0f64, |m, &v| m.max(v.abs()))
        .max(1e-300);
    a.iter()
        .zip(b)
        .fold(0.0f64, |m, (&x, &y)| m.max((x - y).abs()))
        / scale
}

/// Runs `steps` macro steps of a layered two-cluster problem (2:1
/// wave-speed contrast along x) under LTS at `dt_factor` of the stable
/// macro dt, and the same physical span at the fine dt under global
/// stepping; returns the max relative state difference.
///
/// The two runs are *not* the same scheme: the coarse cells' window-2
/// face traces extrapolate the macro-step-start predictor, while the
/// fine-dt global run re-predicts mid-window from a state that already
/// absorbed the first half-window's corrector fluxes. Over a fixed step
/// count that inter-scheme coupling difference is O(dt²) — it is the
/// standard predictor-based-LTS approximation, and it vanishes under
/// refinement, which the convergence-order test below pins.
fn two_cluster_diff<P, F>(pde: impl Fn() -> P, init: F, steps: usize, dt_factor: f64) -> f64
where
    P: aderdg::pde::LinearPde,
    F: Fn([f64; 3], &mut [f64]) + Copy + Sync,
{
    let mesh = || StructuredMesh::new([4, 2, 2], [0.0; 3], [1.0; 3], [BoundaryKind::Reflective; 3]);
    let config = EngineConfig::new(5).with_pipeline(PipelineMode::Sharded);

    let mut lts = Engine::new(mesh(), pde(), config.with_stepping(SteppingMode::Lts));
    lts.set_initial(init);
    // The 2:1 speed contrast must actually produce two clusters: the
    // macro cycle has 2 slots, the fine clock sub-steps twice per cycle.
    let dt_macro = lts.max_dt() * dt_factor;
    assert_eq!(lts.lts_clocks().len(), 0, "clocks allocate on first step");
    for _ in 0..steps {
        lts.step(dt_macro);
    }
    assert_eq!(lts.lts_clocks().len(), 2, "expected exactly two dt levels");
    assert_eq!(lts.lts_clocks()[0].1, 2 * steps as u64);
    assert_eq!(lts.lts_clocks()[1].1, steps as u64);

    let mut global = Engine::new(mesh(), pde(), config.with_stepping(SteppingMode::Global));
    global.set_initial(init);
    for _ in 0..2 * steps {
        global.step(dt_macro / 2.0);
    }
    let state = |e: &Engine<P>| -> Vec<f64> {
        (0..e.mesh.num_cells())
            .flat_map(|c| e.cell_state(c).iter().copied())
            .collect()
    };
    max_rel_diff(&state(&lts), &state(&global))
}

#[test]
fn two_cluster_lts_matches_fine_global_run_acoustic() {
    let _guard = THREAD_KNOB.lock().unwrap();
    let init = |x: [f64; 3], q: &mut [f64]| {
        q.fill(0.0);
        let r2: f64 = x.iter().map(|&c| (c - 0.6) * (c - 0.6)).sum();
        q[aderdg::pde::acoustic::P] = (-r2 / (2.0 * 0.15 * 0.15)).exp();
        // bulk 4 vs 1 at unit density: sound speed 2 vs 1.
        let bulk = if x[0] < 0.5 { 4.0 } else { 1.0 };
        Acoustic::set_params(q, 1.0, bulk);
    };
    let diff = two_cluster_diff(|| Acoustic, init, 4, 2.5e-4);
    assert!(
        diff <= 1e-10,
        "acoustic: two-cluster LTS differs from the fine-dt global run by \
         {diff:.3e} (> 1e-10)"
    );
    // The coupling difference must be second order in dt: halving the
    // step shrinks it ~4× (measured at a dt where it dominates
    // round-off). A wrong sub-window composition — missing differencing,
    // wrong window sign — degrades this to O(dt) or O(1) and fails here.
    let coarse = two_cluster_diff(|| Acoustic, init, 4, 0.05);
    let fine = two_cluster_diff(|| Acoustic, init, 4, 0.025);
    let rate = coarse / fine;
    assert!(
        (3.0..=5.5).contains(&rate),
        "acoustic: LTS coupling difference not second order: \
         {coarse:.3e} → {fine:.3e} under dt halving (ratio {rate:.2})"
    );
}

#[test]
fn two_cluster_lts_matches_fine_global_run_swe() {
    let _guard = THREAD_KNOB.lock().unwrap();
    let init = |x: [f64; 3], q: &mut [f64]| {
        q.fill(0.0);
        // A smoothed dam-break elevation step over a stepped bottom:
        // depth 4 vs 1 at g = 1 gives gravity-wave speeds 2 vs 1.
        q[aderdg::pde::swe::ETA] = 0.1 * (1.0 + ((0.55 - x[0]) / 0.1).tanh()) / 2.0;
        let depth = if x[0] < 0.5 { 4.0 } else { 1.0 };
        LinearizedSwe::set_params(q, depth, 1.0);
    };
    let diff = two_cluster_diff(|| LinearizedSwe, init, 4, 2.5e-4);
    assert!(
        diff <= 1e-10,
        "swe: two-cluster LTS differs from the fine-dt global run by \
         {diff:.3e} (> 1e-10)"
    );
}
