//! Pins the sharded once-per-face pipeline to the seed cell-centric
//! barrier path: for **every registered kernel** and shard sizes
//! {1, 3, whole-mesh}, a run over a mesh with all three boundary kinds
//! and a point-source cell must agree to ≤ 1e-12 relative — the two
//! pipelines implement the same scheme, differing only in when and how
//! often each face's Riemann problem is solved.

use aderdg::core::{Engine, EngineConfig, KernelRegistry, PipelineMode};
use aderdg::mesh::{BoundaryKind, StructuredMesh};
use aderdg::pde::{Acoustic, PointSource, SourceTimeFunction};

/// A small mesh exercising interior, periodic-wrap, outflow and
/// reflective faces at once.
fn mesh() -> StructuredMesh {
    StructuredMesh::new(
        [3, 3, 2],
        [0.0; 3],
        [1.0; 3],
        [
            BoundaryKind::Periodic,
            BoundaryKind::Outflow,
            BoundaryKind::Reflective,
        ],
    )
}

/// Runs three steps of a seeded acoustic problem with a point source and
/// returns the full evolved state.
fn run(config: EngineConfig) -> Vec<f64> {
    let mut engine = Engine::new(mesh(), Acoustic, config);
    engine.set_initial(|x, q| {
        let s = (x[0] * 5.1 + x[1] * 2.7 - x[2] * 3.9).sin();
        q[0] = 0.2 * s;
        q[1] = 0.1 * (x[1] * 4.0).cos();
        q[2] = -0.05 * s;
        q[3] = 0.03 * s * s;
        Acoustic::set_params(q, 1.0 + 0.3 * x[0], 1.0 + 0.1 * x[2]);
    });
    engine.add_point_source(PointSource {
        position: [0.45, 0.52, 0.3],
        amplitude: vec![1.0, 0.0, 0.0, 0.0],
        stf: SourceTimeFunction::Ricker {
            t0: 0.05,
            frequency: 8.0,
        },
    });
    let dt = engine.max_dt() * 0.6;
    for _ in 0..3 {
        engine.step(dt);
    }
    (0..engine.mesh.num_cells())
        .flat_map(|c| engine.cell_state(c).iter().copied())
        .collect()
}

fn max_rel_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let scale = a
        .iter()
        .chain(b.iter())
        .fold(0.0f64, |m, &v| m.max(v.abs()))
        .max(1e-300);
    a.iter()
        .zip(b)
        .fold(0.0f64, |m, (&x, &y)| m.max((x - y).abs()))
        / scale
}

#[test]
fn sharded_matches_barrier_for_every_kernel_and_shard_size() {
    let cells = mesh().num_cells();
    for name in KernelRegistry::global().names() {
        let base = EngineConfig::new(3)
            .with_kernel_name(name)
            .with_pipeline(PipelineMode::Barrier);
        let reference = run(base);
        assert!(
            reference.iter().any(|&v| v != 0.0),
            "{name}: the barrier run must evolve data"
        );
        for shard_size in [1, 3, cells] {
            let sharded = run(EngineConfig::new(3)
                .with_kernel_name(name)
                .with_pipeline(PipelineMode::Sharded)
                .with_shard_size(shard_size));
            let diff = max_rel_diff(&reference, &sharded);
            assert!(
                diff <= 1e-12,
                "{name}, shard_size={shard_size}: max rel diff {diff:e}"
            );
        }
    }
}

#[test]
fn auto_shard_size_matches_barrier_bitwise_for_the_default_kernel() {
    // With auto shard sizing the shard boundaries align to predictor
    // blocks, so the default (per-cell fallback) kernel must agree with
    // the barrier path to the last bit, not just to tolerance.
    let reference = run(EngineConfig::new(3).with_pipeline(PipelineMode::Barrier));
    let sharded = run(EngineConfig::new(3).with_pipeline(PipelineMode::Sharded));
    let diffs = reference
        .iter()
        .zip(&sharded)
        .filter(|(a, b)| a.to_bits() != b.to_bits())
        .count();
    assert_eq!(diffs, 0, "{diffs} doubles differ between the pipelines");
}
