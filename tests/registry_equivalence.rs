//! Registry-driven equivalence matrix: every kernel registered in the
//! [`KernelRegistry`] — not a hard-coded list — must produce the same
//! acoustic plane-wave evolution to floating-point tolerance, both at the
//! single-invocation level and through a full engine run. A newly
//! registered variant is cross-checked here with zero test edits.

use aderdg::core::kernels::{StpInputs, StpOutputs};
use aderdg::core::{
    BlockInputs, CellBlock, Engine, EngineConfig, KernelRegistry, StpConfig, StpPlan,
};
use aderdg::mesh::StructuredMesh;
use aderdg::pde::{Acoustic, AcousticPlaneWave, ExactSolution};

fn plane_wave() -> AcousticPlaneWave {
    AcousticPlaneWave {
        direction: [1.0, 0.0, 0.0],
        amplitude: 1.0,
        wavenumber: 1.0,
        rho: 1.0,
        bulk: 1.0,
    }
}

/// Full-engine matrix: each registered kernel drives the engine on the
/// same acoustic plane wave; all end states must agree with the first
/// kernel's and stay close to the exact solution.
#[test]
fn all_registered_kernels_agree_on_acoustic_plane_wave() {
    let wave = plane_wave();
    let kernels = KernelRegistry::global().kernels();
    assert!(
        kernels.len() >= 4,
        "expected at least the four paper variants, got {:?}",
        KernelRegistry::global().names()
    );

    let mut reference: Option<(String, Vec<Vec<f64>>)> = None;
    for kernel in kernels {
        let mesh = StructuredMesh::unit_cube(2);
        let config = EngineConfig::new(4).with_kernel(kernel);
        let mut engine = Engine::new(mesh, Acoustic, config);
        engine.set_initial(|x, q| {
            wave.evaluate(x, 0.0, q);
            Acoustic::set_params(q, 1.0, 1.0);
        });
        engine.run_until(0.05);

        let err = engine.l2_error(&wave);
        assert!(err < 5e-2, "{}: acoustic error {err}", kernel.name());

        let states: Vec<Vec<f64>> = (0..engine.mesh.num_cells())
            .map(|c| engine.cell_state(c).to_vec())
            .collect();
        match &reference {
            None => reference = Some((kernel.name().to_string(), states)),
            Some((ref_name, ref_states)) => {
                for (c, (a_cell, b_cell)) in states.iter().zip(ref_states).enumerate() {
                    for (i, (a, b)) in a_cell.iter().zip(b_cell).enumerate() {
                        assert!(
                            (a - b).abs() < 1e-9 * (1.0 + b.abs()),
                            "{} vs {ref_name}, cell {c} dof {i}: {a} vs {b}",
                            kernel.name()
                        );
                    }
                }
            }
        }
    }
}

/// Samples the plane wave onto one cell's padded AoS nodes, with a phase
/// offset so distinct cells hold distinct states.
fn plane_wave_state(plan: &StpPlan, phase: f64) -> Vec<f64> {
    let wave = plane_wave();
    let n = plan.n();
    let m_pad = plan.aos.m_pad();
    let nodes = &plan.basis.nodes;
    let mut q0 = vec![0.0; plan.aos.len()];
    for k3 in 0..n {
        for k2 in 0..n {
            for k1 in 0..n {
                let x = [
                    0.5 * nodes[k1] + phase,
                    0.5 * nodes[k2] - 0.3 * phase,
                    0.5 * nodes[k3],
                ];
                let node = (k3 * n + k2) * n + k1;
                let q = &mut q0[node * m_pad..node * m_pad + plan.m()];
                wave.evaluate(x, 0.0, q);
                Acoustic::set_params(q, 1.0, 1.0);
            }
        }
    }
    q0
}

/// Block matrix: for every registered kernel and block sizes {1, 4, 7},
/// `run_block` over a staged [`CellBlock`] must reproduce the per-cell
/// `run` path cell by cell (≤ 1e-12 relative). This is the contract the
/// engine's batched pipeline rests on, checked with zero test edits for
/// future kernels.
#[test]
fn block_path_matches_per_cell_path_for_every_kernel() {
    let plan = StpPlan::new(StpConfig::new(4, Acoustic.num_quantities()), [0.5; 3]);
    use aderdg::pde::LinearPde;
    let dt = 1e-3;
    let tol = 1e-12;

    // Cells 1 and 4 carry a point source, so the block paths' per-cell
    // source injection (distinct slot arithmetic in the AoSoA layout) is
    // exercised at interior block positions, not just source-free cells.
    let cell_source = |c: usize| -> Option<aderdg::core::CellSource> {
        (c % 3 == 1).then(|| {
            let derivs: Vec<Vec<f64>> = (0..=plan.n())
                .map(|o| {
                    (0..Acoustic.num_quantities())
                        .map(|s| 0.1 * (o as f64 + 1.0) - 0.03 * s as f64)
                        .collect()
                })
                .collect();
            aderdg::core::CellSource::project(&plan, [0.6, 0.25, 0.4], [0.5; 3], derivs)
        })
    };

    for kernel in KernelRegistry::global().kernels() {
        // Per-cell reference outputs for 7 distinct cell states.
        let states: Vec<Vec<f64>> = (0..7)
            .map(|c| plane_wave_state(&plan, 0.37 * c as f64))
            .collect();
        let cell_sources: Vec<Option<aderdg::core::CellSource>> =
            (0..states.len()).map(cell_source).collect();
        let mut scratch = kernel.make_scratch(&plan);
        let reference: Vec<StpOutputs> = states
            .iter()
            .enumerate()
            .map(|(c, q0)| {
                let mut out = StpOutputs::new(&plan);
                kernel.run(
                    &plan,
                    &Acoustic,
                    scratch.as_mut(),
                    &StpInputs {
                        q0,
                        dt,
                        source: cell_sources[c].as_ref(),
                    },
                    &mut out,
                );
                out
            })
            .collect();

        for &bs in &[1usize, 4, 7] {
            let mut block_scratch = kernel.make_block_scratch(&plan, bs);
            let mut block = CellBlock::new(&plan, bs);
            // Walk the 7 cells in blocks of `bs` (the tail block is
            // partial, exercising the short-block path).
            let mut base = 0;
            while base < states.len() {
                let cells = bs.min(states.len() - base);
                block.clear();
                for q0 in &states[base..base + cells] {
                    block.push(q0);
                }
                let sources: Vec<Option<&aderdg::core::CellSource>> = (base..base + cells)
                    .map(|c| cell_sources[c].as_ref())
                    .collect();
                let mut outs: Vec<StpOutputs> =
                    (0..cells).map(|_| StpOutputs::new(&plan)).collect();
                kernel.run_block(
                    &plan,
                    &Acoustic,
                    block_scratch.as_mut(),
                    &BlockInputs::new(&block, dt, &sources),
                    &mut outs,
                );
                for (c, out) in outs.iter().enumerate() {
                    let want = &reference[base + c];
                    let ctx =
                        |what: &str| format!("{} bs={bs} cell={} {what}", kernel.name(), base + c);
                    for (i, (a, b)) in out.qavg.iter().zip(want.qavg.iter()).enumerate() {
                        assert!(
                            (a - b).abs() <= tol * (1.0 + b.abs()),
                            "{} [{i}]: {a} vs {b}",
                            ctx("qavg")
                        );
                    }
                    for d in 0..3 {
                        for (a, b) in out.favg[d].iter().zip(want.favg[d].iter()) {
                            assert!((a - b).abs() <= tol * (1.0 + b.abs()), "{}", ctx("favg"));
                        }
                    }
                    for f in 0..6 {
                        for (a, b) in out.qface[f].iter().zip(want.qface[f].iter()) {
                            assert!((a - b).abs() <= tol * (1.0 + b.abs()), "{}", ctx("qface"));
                        }
                        for (a, b) in out.fface[f].iter().zip(want.fface[f].iter()) {
                            assert!((a - b).abs() <= tol * (1.0 + b.abs()), "{}", ctx("fface"));
                        }
                    }
                }
                base += cells;
            }
        }
    }
}

/// Engine-level block invariance: full runs at block sizes {1, 4, 7} end
/// in the same state (≤ 1e-12 relative) for every registered kernel.
#[test]
fn engine_states_invariant_under_block_size() {
    let wave = plane_wave();
    for kernel in KernelRegistry::global().kernels() {
        let run = |block_size: usize| {
            let mesh = StructuredMesh::unit_cube(2);
            let config = EngineConfig::new(3)
                .with_kernel(kernel)
                .with_block_size(block_size);
            let mut engine = Engine::new(mesh, Acoustic, config);
            engine.set_initial(|x, q| {
                wave.evaluate(x, 0.0, q);
                Acoustic::set_params(q, 1.0, 1.0);
            });
            engine.run_until(0.04);
            (0..engine.mesh.num_cells())
                .map(|c| engine.cell_state(c).to_vec())
                .collect::<Vec<_>>()
        };
        let reference = run(1);
        for bs in [4, 7] {
            for (c, (a_cell, b_cell)) in run(bs).iter().zip(&reference).enumerate() {
                for (i, (a, b)) in a_cell.iter().zip(b_cell).enumerate() {
                    assert!(
                        (a - b).abs() <= 1e-12 * (1.0 + b.abs()),
                        "{} bs={bs} cell {c} dof {i}: {a} vs {b}",
                        kernel.name()
                    );
                }
            }
        }
    }
}

/// Single-invocation matrix on the same plane-wave state: predictor
/// outputs (volume and face tensors) of every registered kernel must
/// match the first registered kernel's.
#[test]
fn all_registered_kernels_agree_on_single_predictor_invocation() {
    let wave = plane_wave();
    let plan = StpPlan::new(StpConfig::new(5, Acoustic.num_quantities()), [0.5; 3]);
    use aderdg::pde::LinearPde;

    // Sample the plane wave onto one cell's padded AoS nodes.
    let n = plan.n();
    let m_pad = plan.aos.m_pad();
    let nodes = plan.basis.nodes.clone();
    let mut q0 = vec![0.0; plan.aos.len()];
    for k3 in 0..n {
        for k2 in 0..n {
            for k1 in 0..n {
                let x = [0.5 * nodes[k1], 0.5 * nodes[k2], 0.5 * nodes[k3]];
                let node = (k3 * n + k2) * n + k1;
                let q = &mut q0[node * m_pad..node * m_pad + plan.m()];
                wave.evaluate(x, 0.0, q);
                Acoustic::set_params(q, 1.0, 1.0);
            }
        }
    }
    let inputs = StpInputs {
        q0: &q0,
        dt: 1e-3,
        source: None,
    };

    let mut reference: Option<(String, StpOutputs)> = None;
    for kernel in KernelRegistry::global().kernels() {
        let mut scratch = kernel.make_scratch(&plan);
        let mut out = StpOutputs::new(&plan);
        kernel.run(&plan, &Acoustic, scratch.as_mut(), &inputs, &mut out);
        match &reference {
            None => reference = Some((kernel.name().to_string(), out)),
            Some((ref_name, r)) => {
                for (i, (a, b)) in out.qavg.iter().zip(r.qavg.iter()).enumerate() {
                    assert!(
                        (a - b).abs() < 1e-11 * (1.0 + b.abs()),
                        "{} vs {ref_name} qavg[{i}]: {a} vs {b}",
                        kernel.name()
                    );
                }
                for f in 0..6 {
                    for (a, b) in out.fface[f].iter().zip(r.fface[f].iter()) {
                        assert!(
                            (a - b).abs() < 1e-11 * (1.0 + b.abs()),
                            "{} vs {ref_name} fface[{f}]",
                            kernel.name()
                        );
                    }
                }
            }
        }
    }
}
