//! Registry-driven equivalence matrix: every kernel registered in the
//! [`KernelRegistry`] — not a hard-coded list — must produce the same
//! acoustic plane-wave evolution to floating-point tolerance, both at the
//! single-invocation level and through a full engine run. A newly
//! registered variant is cross-checked here with zero test edits.

use aderdg::core::kernels::{StpInputs, StpOutputs};
use aderdg::core::{Engine, EngineConfig, KernelRegistry, StpConfig, StpPlan};
use aderdg::mesh::StructuredMesh;
use aderdg::pde::{Acoustic, AcousticPlaneWave, ExactSolution};

fn plane_wave() -> AcousticPlaneWave {
    AcousticPlaneWave {
        direction: [1.0, 0.0, 0.0],
        amplitude: 1.0,
        wavenumber: 1.0,
        rho: 1.0,
        bulk: 1.0,
    }
}

/// Full-engine matrix: each registered kernel drives the engine on the
/// same acoustic plane wave; all end states must agree with the first
/// kernel's and stay close to the exact solution.
#[test]
fn all_registered_kernels_agree_on_acoustic_plane_wave() {
    let wave = plane_wave();
    let kernels = KernelRegistry::global().kernels();
    assert!(
        kernels.len() >= 4,
        "expected at least the four paper variants, got {:?}",
        KernelRegistry::global().names()
    );

    let mut reference: Option<(String, Vec<Vec<f64>>)> = None;
    for kernel in kernels {
        let mesh = StructuredMesh::unit_cube(2);
        let config = EngineConfig::new(4).with_kernel(kernel);
        let mut engine = Engine::new(mesh, Acoustic, config);
        engine.set_initial(|x, q| {
            wave.evaluate(x, 0.0, q);
            Acoustic::set_params(q, 1.0, 1.0);
        });
        engine.run_until(0.05);

        let err = engine.l2_error(&wave);
        assert!(err < 5e-2, "{}: acoustic error {err}", kernel.name());

        let states: Vec<Vec<f64>> = (0..engine.mesh.num_cells())
            .map(|c| engine.cell_state(c).to_vec())
            .collect();
        match &reference {
            None => reference = Some((kernel.name().to_string(), states)),
            Some((ref_name, ref_states)) => {
                for (c, (a_cell, b_cell)) in states.iter().zip(ref_states).enumerate() {
                    for (i, (a, b)) in a_cell.iter().zip(b_cell).enumerate() {
                        assert!(
                            (a - b).abs() < 1e-9 * (1.0 + b.abs()),
                            "{} vs {ref_name}, cell {c} dof {i}: {a} vs {b}",
                            kernel.name()
                        );
                    }
                }
            }
        }
    }
}

/// Single-invocation matrix on the same plane-wave state: predictor
/// outputs (volume and face tensors) of every registered kernel must
/// match the first registered kernel's.
#[test]
fn all_registered_kernels_agree_on_single_predictor_invocation() {
    let wave = plane_wave();
    let plan = StpPlan::new(StpConfig::new(5, Acoustic.num_quantities()), [0.5; 3]);
    use aderdg::pde::LinearPde;

    // Sample the plane wave onto one cell's padded AoS nodes.
    let n = plan.n();
    let m_pad = plan.aos.m_pad();
    let nodes = plan.basis.nodes.clone();
    let mut q0 = vec![0.0; plan.aos.len()];
    for k3 in 0..n {
        for k2 in 0..n {
            for k1 in 0..n {
                let x = [0.5 * nodes[k1], 0.5 * nodes[k2], 0.5 * nodes[k3]];
                let node = (k3 * n + k2) * n + k1;
                let q = &mut q0[node * m_pad..node * m_pad + plan.m()];
                wave.evaluate(x, 0.0, q);
                Acoustic::set_params(q, 1.0, 1.0);
            }
        }
    }
    let inputs = StpInputs {
        q0: &q0,
        dt: 1e-3,
        source: None,
    };

    let mut reference: Option<(String, StpOutputs)> = None;
    for kernel in KernelRegistry::global().kernels() {
        let mut scratch = kernel.make_scratch(&plan);
        let mut out = StpOutputs::new(&plan);
        kernel.run(&plan, &Acoustic, scratch.as_mut(), &inputs, &mut out);
        match &reference {
            None => reference = Some((kernel.name().to_string(), out)),
            Some((ref_name, r)) => {
                for (i, (a, b)) in out.qavg.iter().zip(r.qavg.iter()).enumerate() {
                    assert!(
                        (a - b).abs() < 1e-11 * (1.0 + b.abs()),
                        "{} vs {ref_name} qavg[{i}]: {a} vs {b}",
                        kernel.name()
                    );
                }
                for f in 0..6 {
                    for (a, b) in out.fface[f].iter().zip(r.fface[f].iter()) {
                        assert!(
                            (a - b).abs() < 1e-11 * (1.0 + b.abs()),
                            "{} vs {ref_name} fface[{f}]",
                            kernel.name()
                        );
                    }
                }
            }
        }
    }
}
