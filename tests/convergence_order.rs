//! Convergence-order golden test: the ADER-DG scheme attains its design
//! order on mesh refinement.
//!
//! Promotes the `examples/convergence.rs` study into asserted tier-1
//! coverage: multi-component linear advection of a smooth sine profile on
//! successively refined periodic meshes, orders 2–5, with the observed L2
//! rate required to reach the design order (minus a 0.8 asymptotic
//! margin). Low orders need finer meshes to reach the asymptotic regime;
//! high orders hit round-off there — so each order measures its rate on
//! the appropriate refinement step, exactly as in the example.

use aderdg::core::{Engine, EngineConfig, KernelVariant, SteppingMode};
use aderdg::mesh::StructuredMesh;
use aderdg::pde::{
    AdvectedSine, AdvectionSystem, ExactSolution, RotatingAdvection, RotatingGaussian,
};

fn l2_error(order: usize, cells: usize) -> f64 {
    let velocity = [0.7, 0.4, 0.2];
    let pde = AdvectionSystem::new(3, velocity);
    let exact = AdvectedSine {
        n_vars: 3,
        velocity,
        wave: [1.0, 0.0, 0.0],
    };
    let mesh = StructuredMesh::unit_cube(cells);
    let mut engine = Engine::new(
        mesh,
        pde,
        EngineConfig::new(order).with_variant(KernelVariant::SplitCk),
    );
    engine.set_initial(|x, q| exact.evaluate(x, 0.0, q));
    engine.run_until(0.1);
    engine.l2_error(&exact)
}

/// Observed rate `log2(e_coarse / e_fine)` for one halving of the mesh
/// width at the refinement step appropriate for the order.
fn observed_rate(order: usize) -> (f64, f64, f64) {
    let e2 = l2_error(order, 2);
    let e4 = l2_error(order, 4);
    if order <= 3 {
        let e8 = l2_error(order, 8);
        (e4, e8, (e4 / e8).log2())
    } else {
        (e2, e4, (e2 / e4).log2())
    }
}

/// L2 error of the solid-body rotation patch under the given stepping
/// mode. The velocity field `v = ω ẑ × (x − c)` makes the per-cell
/// stable dt genuinely heterogeneous (slow near the centre, fast at the
/// corners), so under LTS the engine buckets the mesh into several dt
/// levels and the sub-window face coupling is exercised for real — the
/// returned level count asserts that.
fn rotation_l2_error(order: usize, cells: usize, stepping: SteppingMode) -> (f64, usize) {
    let omega = std::f64::consts::FRAC_PI_2;
    let center = [0.5, 0.5, 0.5];
    let pde = RotatingAdvection { omega, center };
    let exact = RotatingGaussian {
        omega,
        center,
        start: [0.7, 0.5, 0.5],
        sigma: 0.1,
        amplitude: 1.0,
    };
    let mesh = StructuredMesh::unit_cube(cells);
    let mut engine = Engine::new(
        mesh,
        pde,
        EngineConfig::new(order)
            .with_variant(KernelVariant::SplitCk)
            .with_stepping(stepping),
    );
    engine.set_initial(|x, q| {
        exact.evaluate(x, 0.0, q);
        RotatingAdvection::set_params(q, omega, center, x);
    });
    engine.run_until(0.2);
    (engine.l2_error(&exact), engine.lts_clocks().len())
}

#[test]
fn lts_converges_at_design_rate_on_heterogeneous_dt() {
    for order in [3usize, 4] {
        let mut errs = [0.0f64; 2];
        for (i, cells) in [4usize, 8].into_iter().enumerate() {
            let (eg, _) = rotation_l2_error(order, cells, SteppingMode::Global);
            let (el, levels) = rotation_l2_error(order, cells, SteppingMode::Lts);
            // The workload must actually cluster — a single level would
            // degenerate to the global path and test nothing new.
            assert!(
                levels >= 2,
                "order {order}, {cells}³: expected multi-level clustering, got {levels} levels"
            );
            // LTS must not degrade accuracy: whatever error the global
            // scheme reaches on this grid (the workload floors at the
            // outflow tails before the dt discretization matters), the
            // clustered run must match it closely.
            assert!(
                (el - eg).abs() <= 0.05 * eg,
                "order {order}, {cells}³: LTS error {el:.4e} deviates from global {eg:.4e}"
            );
            errs[i] = el;
        }
        // And the LTS errors themselves must refine at the design rate
        // wherever the workload supports it (order 4 saturates on the
        // outflow-tail floor at 8³ — the global-match assertion above
        // carries that case, the rate margin here reflects it).
        let rate = (errs[0] / errs[1]).log2();
        let margin = if order == 3 { 0.8 } else { 1.5 };
        assert!(
            rate > order as f64 - margin,
            "order {order}: observed LTS rate {rate:.2} below design order"
        );
    }
}

#[test]
fn orders_2_and_3_converge_at_design_rate() {
    for order in [2usize, 3] {
        let (coarse, fine, rate) = observed_rate(order);
        assert!(
            fine < coarse,
            "order {order}: refinement must reduce the error ({coarse} -> {fine})"
        );
        assert!(
            rate > order as f64 - 0.8,
            "order {order}: observed rate {rate:.2} below design order"
        );
    }
}

#[test]
fn orders_4_and_5_converge_at_design_rate() {
    for order in [4usize, 5] {
        let (coarse, fine, rate) = observed_rate(order);
        assert!(
            fine < coarse,
            "order {order}: refinement must reduce the error ({coarse} -> {fine})"
        );
        assert!(
            rate > order as f64 - 0.8,
            "order {order}: observed rate {rate:.2} below design order"
        );
    }
}
