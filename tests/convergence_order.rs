//! Convergence-order golden test: the ADER-DG scheme attains its design
//! order on mesh refinement.
//!
//! Promotes the `examples/convergence.rs` study into asserted tier-1
//! coverage: multi-component linear advection of a smooth sine profile on
//! successively refined periodic meshes, orders 2–5, with the observed L2
//! rate required to reach the design order (minus a 0.8 asymptotic
//! margin). Low orders need finer meshes to reach the asymptotic regime;
//! high orders hit round-off there — so each order measures its rate on
//! the appropriate refinement step, exactly as in the example.

use aderdg::core::{Engine, EngineConfig, KernelVariant};
use aderdg::mesh::StructuredMesh;
use aderdg::pde::{AdvectedSine, AdvectionSystem, ExactSolution};

fn l2_error(order: usize, cells: usize) -> f64 {
    let velocity = [0.7, 0.4, 0.2];
    let pde = AdvectionSystem::new(3, velocity);
    let exact = AdvectedSine {
        n_vars: 3,
        velocity,
        wave: [1.0, 0.0, 0.0],
    };
    let mesh = StructuredMesh::unit_cube(cells);
    let mut engine = Engine::new(
        mesh,
        pde,
        EngineConfig::new(order).with_variant(KernelVariant::SplitCk),
    );
    engine.set_initial(|x, q| exact.evaluate(x, 0.0, q));
    engine.run_until(0.1);
    engine.l2_error(&exact)
}

/// Observed rate `log2(e_coarse / e_fine)` for one halving of the mesh
/// width at the refinement step appropriate for the order.
fn observed_rate(order: usize) -> (f64, f64, f64) {
    let e2 = l2_error(order, 2);
    let e4 = l2_error(order, 4);
    if order <= 3 {
        let e8 = l2_error(order, 8);
        (e4, e8, (e4 / e8).log2())
    } else {
        (e2, e4, (e2 / e4).log2())
    }
}

#[test]
fn orders_2_and_3_converge_at_design_rate() {
    for order in [2usize, 3] {
        let (coarse, fine, rate) = observed_rate(order);
        assert!(
            fine < coarse,
            "order {order}: refinement must reduce the error ({coarse} -> {fine})"
        );
        assert!(
            rate > order as f64 - 0.8,
            "order {order}: observed rate {rate:.2} below design order"
        );
    }
}

#[test]
fn orders_4_and_5_converge_at_design_rate() {
    for order in [4usize, 5] {
        let (coarse, fine, rate) = observed_rate(order);
        assert!(
            fine < coarse,
            "order {order}: refinement must reduce the error ({coarse} -> {fine})"
        );
        assert!(
            rate > order as f64 - 0.8,
            "order {order}: observed rate {rate:.2} below design order"
        );
    }
}
