//! Boundary-condition coverage matrix: for every PDE system, periodic
//! and reflective (wall) boundaries through the **sharded once-per-face
//! pipeline** must conserve — or correctly reflect — the system's
//! invariants.
//!
//! The discrete scheme is conservative: summing the corrector update
//! over all cells telescopes the interior `F*` contributions away
//! (each face is solved once and applied with opposite signs to its two
//! cells), so the mesh integral of an evolved quantity can only change
//! through domain-boundary fluxes. That gives exact machine-precision
//! invariants:
//!
//! * **periodic** — every face is interior: every *flux-form* evolved
//!   quantity's integral is conserved to round-off. Rows updated through
//!   the non-conservative product (the SWE velocities) are exempt: the
//!   NCP volume term does not telescope, so their integrals move even
//!   with no boundary at all;
//! * **reflective** — the wall `F*` vanishes exactly for the rows whose
//!   flux is odd under the ghost reflection (the Rusanov average of
//!   `±F` is zero and the dissipation term sees no jump): pressure for
//!   the rigid acoustic wall, elevation for the shallow-water wall,
//!   momentum for the elastic free surface, the magnetic field for the
//!   PEC wall — those rows are conserved while the others are not;
//! * **outflow** (advection has no meaningful reflection; its default
//!   ghost is zero-gradient) — the Rusanov solve against a quiescent
//!   exterior only ever removes content: the L2 norm must not grow.
//!
//! The initial data is a broad off-centre Gaussian whose tails reach the
//! walls, so the boundary fluxes are genuinely exercised from the first
//! step (and the non-conserved rows visibly drift, keeping the test
//! non-vacuous).

use aderdg::core::{Engine, EngineConfig, PipelineMode, SteppingMode};
use aderdg::mesh::{BoundaryKind, StructuredMesh};
use aderdg::pde::{
    acoustic, elastic, maxwell, swe, Acoustic, AdvectionSystem, Elastic, LinearPde, LinearizedSwe,
    Material, Maxwell,
};

/// A broad Gaussian bump, off-centre so no symmetry hides drift.
fn bump(x: [f64; 3]) -> f64 {
    let c = [0.35, 0.42, 0.55];
    let r2: f64 = (0..3).map(|d| (x[d] - c[d]) * (x[d] - c[d])).sum();
    (-r2 / (2.0 * 0.22 * 0.22)).exp()
}

/// Runs `steps` CFL steps of a 3³ order-3 sharded engine and returns
/// (initial integrals, final integrals, initial L2 norm, final L2 norm).
fn run<P: LinearPde>(
    pde: P,
    boundary: BoundaryKind,
    init: impl Fn([f64; 3], &mut [f64]) + Sync,
) -> (Vec<f64>, Vec<f64>, f64, f64) {
    let mesh = StructuredMesh::new([3, 3, 3], [0.0; 3], [1.0; 3], [boundary; 3]);
    let config = EngineConfig::new(3).with_pipeline(PipelineMode::Sharded);
    let mut engine = Engine::new(mesh, pde, config);
    engine.set_initial(init);
    let i0 = engine.integrals();
    let n0 = engine.l2_norm();
    for _ in 0..6 {
        let dt = engine.max_dt();
        engine.step(dt);
    }
    (i0, engine.integrals(), n0, engine.l2_norm())
}

/// Runs the same matrix row under `stepping = lts` on a [4, 3, 3] mesh —
/// the caller's `init` layers the material so the left half of the
/// domain is faster, the per-cell stable dt splits 2:1, and a cluster
/// boundary sits in the domain interior. The conservation telescoping
/// must survive it: at a cadence-mismatched face the two fine-window
/// `F*` are accumulated and the coarse cell applies their sum, so the
/// face contribution still cancels exactly between its two cells.
/// Asserts multi-level clustering actually happened (a single level
/// would degenerate to the global path and test nothing new).
fn run_lts<P: LinearPde>(
    pde: P,
    boundary: BoundaryKind,
    init: impl Fn([f64; 3], &mut [f64]) + Sync,
) -> (Vec<f64>, Vec<f64>, f64, f64) {
    let mesh = StructuredMesh::new([4, 3, 3], [0.0; 3], [1.0; 3], [boundary; 3]);
    let config = EngineConfig::new(3).with_stepping(SteppingMode::Lts);
    let mut engine = Engine::new(mesh, pde, config);
    engine.set_initial(init);
    let i0 = engine.integrals();
    let n0 = engine.l2_norm();
    for _ in 0..6 {
        let dt = engine.max_dt();
        engine.step(dt);
    }
    assert!(
        engine.lts_clocks().len() >= 2,
        "layered medium must produce multi-level clustering"
    );
    (i0, engine.integrals(), n0, engine.l2_norm())
}

/// Round-off budget for an exactly conserved integral over 6 steps.
const EXACT: f64 = 1e-12;

/// Asserts the matrix row: `conserved` indices keep their integral to
/// round-off; at least one other evolved row drifts measurably (the
/// boundary is actually doing something); the norm never grows when it
/// is an energy (`energy_norm`) and at least stays bounded otherwise.
fn check(
    label: &str,
    (i0, i1, n0, n1): (Vec<f64>, Vec<f64>, f64, f64),
    conserved: &[usize],
    expect_drift: bool,
    energy_norm: bool,
) {
    let scale = n0.max(1.0);
    for &s in conserved {
        let d = (i1[s] - i0[s]).abs();
        assert!(
            d <= EXACT * scale,
            "{label}: quantity {s} must be conserved, drifted by {d:.3e}"
        );
    }
    if expect_drift {
        let max_other = (0..i0.len())
            .filter(|s| !conserved.contains(s))
            .map(|s| (i1[s] - i0[s]).abs())
            .fold(0.0, f64::max);
        assert!(
            max_other > 1e-9 * scale,
            "{label}: no non-conserved quantity moved ({max_other:.3e}) — vacuous test"
        );
    }
    if energy_norm {
        // Unit impedance: the plain L2 norm is the energy, and Rusanov
        // only dissipates it.
        assert!(
            n1 <= n0 * (1.0 + 1e-12),
            "{label}: L2 norm grew ({n0} -> {n1})"
        );
    } else {
        // The L2 norm is not an energy here (wave speed ≠ 1 converts
        // between quantities at different weights); require boundedness.
        assert!(n1 <= n0 * 10.0, "{label}: L2 norm blew up ({n0} -> {n1})");
    }
}

#[test]
fn acoustic_periodic_conserves_every_quantity() {
    let r = run(Acoustic, BoundaryKind::Periodic, |x, q| {
        q.fill(0.0);
        q[acoustic::P] = bump(x);
        Acoustic::set_params(q, 1.0, 1.0);
    });
    check("acoustic periodic", r, &[0, 1, 2, 3], false, true);
}

#[test]
fn acoustic_rigid_wall_conserves_pressure_only() {
    let r = run(Acoustic, BoundaryKind::Reflective, |x, q| {
        q.fill(0.0);
        q[acoustic::P] = bump(x);
        Acoustic::set_params(q, 1.0, 1.0);
    });
    // The rigid wall flips the normal velocity in the ghost: the wall
    // flux of p (= -K u_n averaged with its negation) vanishes exactly,
    // while the velocity rows feel the wall pressure.
    check("acoustic reflective", r, &[acoustic::P], true, true);
}

#[test]
fn acoustic_layered_lts_periodic_conserves_every_quantity() {
    // 4:1 bulk contrast (2:1 sound speed) at unit density: every row is
    // flux-form (the u-flux is ∇p at ρ = 1), so all four integrals must
    // telescope to round-off across the cluster boundary too.
    let r = run_lts(Acoustic, BoundaryKind::Periodic, |x, q| {
        q.fill(0.0);
        q[acoustic::P] = bump(x);
        let bulk = if x[0] < 0.5 { 4.0 } else { 1.0 };
        Acoustic::set_params(q, 1.0, bulk);
    });
    // bulk ≠ 1 breaks unit impedance, so the L2 norm is no longer the
    // energy — require boundedness, not monotonicity.
    check(
        "acoustic layered lts periodic",
        r,
        &[0, 1, 2, 3],
        false,
        false,
    );
}

#[test]
fn acoustic_layered_lts_rigid_wall_conserves_pressure_only() {
    let r = run_lts(Acoustic, BoundaryKind::Reflective, |x, q| {
        q.fill(0.0);
        q[acoustic::P] = bump(x);
        let bulk = if x[0] < 0.5 { 4.0 } else { 1.0 };
        Acoustic::set_params(q, 1.0, bulk);
    });
    check(
        "acoustic layered lts reflective",
        r,
        &[acoustic::P],
        true,
        false,
    );
}

#[test]
fn swe_layered_lts_conserves_the_flux_form_elevation() {
    // Depth 4 vs 1 at g = 1: gravity-wave speeds 2:1. Only η is
    // flux-form (see the periodic SWE row above) and its integral must
    // hold to round-off across the cluster boundary, under both
    // boundary kinds.
    for boundary in [BoundaryKind::Periodic, BoundaryKind::Reflective] {
        let r = run_lts(LinearizedSwe, boundary, |x, q| {
            q.fill(0.0);
            q[swe::ETA] = bump(x);
            let depth = if x[0] < 0.5 { 4.0 } else { 1.0 };
            LinearizedSwe::set_params(q, depth, 1.0);
        });
        check(
            &format!("swe layered lts {boundary:?}"),
            r,
            &[swe::ETA],
            true,
            false,
        );
    }
}

#[test]
fn advection_periodic_conserves_mass_and_outflow_dissipates() {
    let pde = AdvectionSystem::new(2, [0.7, 0.4, 0.2]);
    let r = run(pde, BoundaryKind::Periodic, |x, q| {
        q[0] = bump(x);
        q[1] = 0.5 * bump(x);
    });
    check("advection periodic", r, &[0, 1], false, true);

    // Advection has no meaningful reflection (default zero-gradient
    // ghost); the outflow invariant is dissipation: content only leaves.
    let pde = AdvectionSystem::new(2, [0.7, 0.4, 0.2]);
    let (i0, i1, n0, n1) = run(pde, BoundaryKind::Outflow, |x, q| {
        q[0] = bump(x);
        q[1] = 0.5 * bump(x);
    });
    assert!(n1 < n0, "outflow must dissipate ({n0} -> {n1})");
    assert!(
        (i1[0] - i0[0]).abs() > 1e-9,
        "outflow boundary never touched: vacuous"
    );
}

#[test]
fn elastic_periodic_conserves_every_quantity() {
    let mat = Material {
        rho: 1.0,
        cp: 1.0,
        cs: 0.6,
    };
    let r = run(Elastic, BoundaryKind::Periodic, |x, q| {
        q.fill(0.0);
        q[elastic::VX] = bump(x);
        q[elastic::SXY] = 0.3 * bump(x);
        Elastic::set_params(q, mat, &Elastic::IDENTITY_JAC);
    });
    check(
        "elastic periodic",
        r,
        &(0..9).collect::<Vec<_>>(),
        false,
        true,
    );
}

#[test]
fn elastic_free_surface_conserves_momentum_only() {
    let mat = Material {
        rho: 1.0,
        cp: 1.0,
        cs: 0.6,
    };
    let r = run(Elastic, BoundaryKind::Reflective, |x, q| {
        q.fill(0.0);
        q[elastic::VX] = bump(x);
        q[elastic::SXY] = 0.3 * bump(x);
        Elastic::set_params(q, mat, &Elastic::IDENTITY_JAC);
    });
    // The free surface negates the traction rows in the ghost, so the
    // velocity (momentum) fluxes — which read exactly those rows —
    // average to zero at the wall: zero-traction means no momentum
    // leaves. The stress rows feel the mirrored velocity instead.
    check(
        "elastic reflective",
        r,
        &[elastic::VX, elastic::VY, elastic::VZ],
        true,
        true,
    );
}

#[test]
fn maxwell_periodic_conserves_every_quantity() {
    let r = run(Maxwell, BoundaryKind::Periodic, |x, q| {
        q.fill(0.0);
        q[maxwell::HZ] = bump(x);
        q[maxwell::EX] = 0.4 * bump(x);
        Maxwell::set_params(q, 1.0, 1.0);
    });
    check("maxwell periodic", r, &[0, 1, 2, 3, 4, 5], false, true);
}

#[test]
fn maxwell_pec_wall_conserves_magnetic_flux_only() {
    let r = run(Maxwell, BoundaryKind::Reflective, |x, q| {
        q.fill(0.0);
        q[maxwell::HZ] = bump(x);
        q[maxwell::EX] = 0.4 * bump(x);
        Maxwell::set_params(q, 1.0, 1.0);
    });
    // The PEC ghost flips the tangential E components; every H-row flux
    // reads exactly a tangential E, so the wall flux of H averages to
    // zero (and H itself has no jump): ∫H is conserved while the E rows
    // feel the wall currents.
    check(
        "maxwell reflective",
        r,
        &[maxwell::HX, maxwell::HY, maxwell::HZ],
        true,
        true,
    );
}

#[test]
fn swe_periodic_conserves_the_flux_form_elevation() {
    let r = run(LinearizedSwe, BoundaryKind::Periodic, |x, q| {
        q.fill(0.0);
        q[swe::ETA] = bump(x);
        LinearizedSwe::set_params(q, 1.0, 9.81);
    });
    // Only η is flux-form; the velocities evolve through the
    // non-conservative product −g ∇η, whose volume term does not
    // telescope — their integrals legitimately drift even with periodic
    // boundaries (expect_drift asserts exactly that).
    check("swe periodic", r, &[swe::ETA], true, false);
}

#[test]
fn swe_wall_conserves_water_volume_only() {
    let r = run(LinearizedSwe, BoundaryKind::Reflective, |x, q| {
        q.fill(0.0);
        q[swe::ETA] = bump(x);
        LinearizedSwe::set_params(q, 1.0, 9.81);
    });
    // The wall flips the normal velocity: the elevation flux −H u_n
    // averages to zero at the wall, so no water volume crosses it; the
    // velocity rows feel the wall through the g ∇η non-conservative
    // product and the Rusanov dissipation.
    check("swe reflective", r, &[swe::ETA], true, false);
}
