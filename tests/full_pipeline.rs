//! Cross-crate integration tests through the `aderdg` facade: kernels,
//! layouts, GEMM, mesh, PDEs and the engine working together.

use aderdg::core::kernels::{StpInputs, StpOutputs};
use aderdg::core::{Engine, EngineConfig, KernelRegistry, KernelVariant, StpConfig, StpPlan};
use aderdg::mesh::{CurvilinearMap, SineDeformation, StructuredMesh};
use aderdg::pde::{Elastic, ElasticPlaneWave, ExactSolution, LinearPde, Material};
use aderdg::tensor::{aos_to_aosoa, aosoa_to_aos, SimdWidth};

/// Reproducible random padded-AoS state with elastic parameters.
fn elastic_state(plan: &StpPlan, curvilinear: bool, seed: u64) -> Vec<f64> {
    let mut rng = aderdg::tensor::Lcg::new(seed);
    let mut next = move || rng.unit();
    let m_pad = plan.aos.m_pad();
    let mat = Material {
        rho: 2.7,
        cp: 6.0,
        cs: 3.46,
    };
    let map = SineDeformation { amplitude: 0.02 };
    let n = plan.n();
    let mut q = vec![0.0; plan.aos.len()];
    for k3 in 0..n {
        for k2 in 0..n {
            for k1 in 0..n {
                let k = (k3 * n + k2) * n + k1;
                for s in 0..9 {
                    q[k * m_pad + s] = next();
                }
                let jac = if curvilinear {
                    map.metric([
                        k1 as f64 / n as f64,
                        k2 as f64 / n as f64,
                        k3 as f64 / n as f64,
                    ])
                } else {
                    Elastic::IDENTITY_JAC
                };
                Elastic::set_params(&mut q[k * m_pad..k * m_pad + 21], mat, &jac);
            }
        }
    }
    q
}

#[test]
fn all_registered_kernels_agree_on_curvilinear_elastic_at_all_tested_orders() {
    // The paper's correctness contract, through the facade, with the full
    // m = 21 curvilinear configuration — over *every* registered kernel,
    // so a newly registered variant is cross-checked with zero edits.
    for order in [3, 5, 7] {
        let plan = StpPlan::new(StpConfig::new(order, 21), [0.25; 3]);
        let q0 = elastic_state(&plan, true, order as u64 * 7919);
        let inputs = StpInputs {
            q0: &q0,
            dt: 5e-4,
            source: None,
        };
        let pde = Elastic;
        let mut reference: Option<StpOutputs> = None;
        for kernel in KernelRegistry::global().kernels() {
            let mut scratch = kernel.make_scratch(&plan);
            let mut out = StpOutputs::new(&plan);
            kernel.run(&plan, &pde, scratch.as_mut(), &inputs, &mut out);
            if let Some(r) = &reference {
                for (i, (a, b)) in out.qavg.iter().zip(r.qavg.iter()).enumerate() {
                    assert!(
                        (a - b).abs() < 1e-10 * (1.0 + b.abs()),
                        "{} qavg[{i}] order {order}: {a} vs {b}",
                        kernel.name()
                    );
                }
                for f in 0..6 {
                    for (a, b) in out.fface[f].iter().zip(r.fface[f].iter()) {
                        assert!((a - b).abs() < 1e-10 * (1.0 + b.abs()));
                    }
                }
            } else {
                reference = Some(out.clone());
            }
        }
    }
}

#[test]
fn aosoa_transpose_roundtrip_through_kernel_layouts() {
    // tensor-crate transposes and core-crate layouts must agree on padding
    // and indexing for the exact configurations the kernels use.
    for (order, m) in [(4, 21), (8, 21), (9, 9)] {
        let plan = StpPlan::new(StpConfig::new(order, m), [1.0; 3]);
        let q0 = elastic_state(
            &StpPlan::new(StpConfig::new(order, 21), [1.0; 3]),
            false,
            42,
        );
        // Use only the first plan.aos.len() entries if m < 21.
        let mut src = vec![0.0; plan.aos.len()];
        let m_pad_src = StpPlan::new(StpConfig::new(order, 21), [1.0; 3])
            .aos
            .m_pad();
        for k in 0..order * order * order {
            for s in 0..m.min(21) {
                src[k * plan.aos.m_pad() + s] = q0[k * m_pad_src + s];
            }
        }
        let mut hybrid = vec![0.0; plan.aosoa.len()];
        aos_to_aosoa(&src, &plan.aos, &mut hybrid, &plan.aosoa);
        let mut back = vec![0.0; plan.aos.len()];
        aosoa_to_aos(&hybrid, &plan.aosoa, &mut back, &plan.aos);
        assert_eq!(src, back, "order {order} m {m}");
    }
}

#[test]
fn engine_on_curvilinear_metric_matches_identity_at_zero_deformation() {
    // A SineDeformation of amplitude 0 must reproduce the Cartesian run
    // bit-for-bit (the metric path is exercised but the values are I).
    let mat = Material {
        rho: 1.0,
        cp: 1.0,
        cs: 0.6,
    };
    let wave = ElasticPlaneWave {
        direction: [1.0, 0.0, 0.0],
        polarization: [1.0, 0.0, 0.0],
        amplitude: 0.1,
        wavenumber: 1.0,
        material: mat,
    };
    let map = SineDeformation { amplitude: 0.0 };
    let run = |use_map: bool| -> f64 {
        let mesh = StructuredMesh::unit_cube(2);
        let mut engine = Engine::new(mesh, Elastic, EngineConfig::new(3));
        engine.set_initial(|x, q| {
            wave.evaluate(x, 0.0, q);
            let jac = if use_map {
                map.metric(x)
            } else {
                Elastic::IDENTITY_JAC
            };
            Elastic::set_params(q, mat, &jac);
        });
        engine.run_until(0.05);
        engine.l2_error(&wave)
    };
    let e_map = run(true);
    let e_id = run(false);
    assert!(
        (e_map - e_id).abs() < 1e-13,
        "zero deformation changed the result: {e_map} vs {e_id}"
    );
}

#[test]
fn engine_stable_on_genuinely_curvilinear_mesh() {
    let mat = Material {
        rho: 1.0,
        cp: 1.0,
        cs: 0.6,
    };
    let map = SineDeformation { amplitude: 0.02 };
    let mesh = StructuredMesh::unit_cube(2);
    let mut engine = Engine::new(
        mesh,
        Elastic,
        EngineConfig::new(3).with_variant(KernelVariant::AoSoASplitCk),
    );
    engine.set_initial(|x, q| {
        q.fill(0.0);
        let r2 = (x[0] - 0.5).powi(2) + (x[1] - 0.5).powi(2) + (x[2] - 0.5).powi(2);
        q[0] = 0.1 * (-r2 / 0.05).exp();
        Elastic::set_params(q, mat, &map.metric(x));
    });
    engine.run_until(1.0);
    let m_pad = engine.plan.aos.m_pad();
    let mx: f64 = (0..engine.mesh.num_cells())
        .flat_map(|c| {
            let q = engine.cell_state(c);
            (0..27).map(move |k| q[k * m_pad].abs())
        })
        .fold(0.0, f64::max);
    assert!(mx.is_finite() && mx < 1.0, "curvilinear run unstable: {mx}");
}

#[test]
fn scratch_footprints_match_perf_formulas_in_scaling() {
    use aderdg::perf::footprint;
    for order in [4, 6, 8, 10] {
        let plan = StpPlan::new(StpConfig::new(order, 21), [1.0; 3]);
        let gen = KernelVariant::Generic.kernel().footprint_bytes(&plan);
        let split = KernelVariant::SplitCk.kernel().footprint_bytes(&plan);
        let f_gen = footprint::generic_temporaries_bytes(order, 21);
        let f_split = footprint::splitck_temporaries_bytes(order, 21);
        // Allocated scratch tracks the analytic formula within a factor
        // ~3 (the formula omits gradQ/flux persistence details and
        // padding; the scaling — the paper's claim — must match).
        let r_gen = gen as f64 / f_gen as f64;
        let r_split = split as f64 / f_split as f64;
        assert!(
            r_gen > 0.5 && r_gen < 3.5,
            "order {order}: generic ratio {r_gen}"
        );
        assert!(
            r_split > 0.2 && r_split < 3.0,
            "order {order}: splitck ratio {r_split}"
        );
    }
}

#[test]
fn simd_width_override_keeps_results_identical() {
    // An AVX2-padded plan must produce the same numbers as an AVX-512 one.
    let pde = Elastic;
    let mut outs = Vec::new();
    for width in [SimdWidth::W2, SimdWidth::W4, SimdWidth::W8] {
        let plan = StpPlan::new(StpConfig::new(4, 21).with_width(width), [0.5; 3]);
        let q0 = elastic_state(
            &StpPlan::new(StpConfig::new(4, 21).with_width(width), [0.5; 3]),
            false,
            1234,
        );
        let kernel = KernelVariant::SplitCk.kernel();
        let mut scratch = kernel.make_scratch(&plan);
        let mut out = StpOutputs::new(&plan);
        kernel.run(
            &plan,
            &pde,
            scratch.as_mut(),
            &StpInputs {
                q0: &q0,
                dt: 1e-3,
                source: None,
            },
            &mut out,
        );
        // Compare on unpadded entries.
        let m_pad = plan.aos.m_pad();
        let vals: Vec<f64> = (0..64)
            .flat_map(|k| (0..21).map(move |s| k * m_pad + s))
            .map(|i| out.qavg[i])
            .collect();
        outs.push(vals);
    }
    for w in 1..outs.len() {
        for (a, b) in outs[w].iter().zip(&outs[0]) {
            assert!((a - b).abs() < 1e-12 * (1.0 + b.abs()));
        }
    }
    let _ = pde.num_quantities();
}
