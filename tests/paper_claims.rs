//! Direct tests of the paper's quantitative claims, as reproduced by the
//! performance model (the measured counterparts live in the bench crate).

use aderdg::core::mix::{stp_pack_counts, stp_useful_flops, UserFunctionCost};
use aderdg::core::traces::trace_batch;
use aderdg::core::{KernelVariant, StpConfig, StpPlan};
use aderdg::perf::{footprint, CacheSim, MachineModel};
use aderdg::tensor::SimdWidth;

fn plan(order: usize, width: SimdWidth) -> StpPlan {
    StpPlan::new(StpConfig::new(order, 21).with_width(width), [1.0; 3])
}

fn stall_fraction(variant: KernelVariant, order: usize) -> f64 {
    let p = plan(order, SimdWidth::W8);
    let machine = MachineModel::skylake_sp();
    let mut sim = CacheSim::skylake_sp();
    trace_batch(&p, variant, false, 1, &mut sim); // warm-up
    sim.reset_stats();
    let cells = 4;
    trace_batch(&p, variant, false, cells, &mut sim);
    let mix = stp_pack_counts(&p, variant, UserFunctionCost::elastic()).scale(cells as u64);
    machine.stall_fraction_mix(&sim.stats(), &mix)
}

/// Figs. 4/6/10 band: every variant's modelled stall share lies in the
/// paper's observed 15–60 % window across the measured orders.
#[test]
fn claim_stall_band() {
    for variant in KernelVariant::ALL {
        for order in [4, 8, 11] {
            let s = stall_fraction(variant, order);
            assert!(
                (0.1..0.65).contains(&s),
                "{} order {order}: stall {s}",
                variant.name()
            );
        }
    }
}

/// Sec. IV-A: "for a 3D medium-sized problem (m = 25, d = 3) the 1 MB
/// limit will be exceeded as soon as N = 6".
#[test]
fn claim_l2_overflow_at_order_6() {
    assert_eq!(footprint::l2_overflow_order(25, 1024 * 1024), Some(6));
}

/// Sec. IV-B: SplitCK reduces the footprint by the time dimension and a
/// further factor 3 — at order 8 the combined reduction exceeds 4×.
#[test]
fn claim_splitck_footprint_reduction() {
    let r = footprint::splitck_reduction_factor(8, 21);
    assert!(r > 4.0, "reduction {r}");
}

/// Fig. 6 shape: SplitCK's stall ratio decreases with order; LoG's does
/// not drop below it once past the L2 capacity (order ≥ 6).
#[test]
fn claim_fig6_stall_shapes() {
    let log: Vec<f64> = [5, 7, 9]
        .iter()
        .map(|&n| stall_fraction(KernelVariant::LoG, n))
        .collect();
    let split: Vec<f64> = [5, 7, 9]
        .iter()
        .map(|&n| stall_fraction(KernelVariant::SplitCk, n))
        .collect();
    assert!(
        split[2] < split[0],
        "SplitCK stalls must decrease with order: {split:?}"
    );
    assert!(
        log[2] > split[2],
        "LoG must stall more than SplitCK at high order: log={log:?} split={split:?}"
    );
}

/// Fig. 9 shape at order 8 (AVX-512):
/// generic mostly scalar; LoG/SplitCK ≳ 80 % packed with ~10 % scalar
/// user functions; AoSoA ≤ 5 % scalar.
#[test]
fn claim_fig9_instruction_mix_shape() {
    let cost = UserFunctionCost::elastic();
    let p = plan(8, SimdWidth::W8);

    let gen = stp_pack_counts(&p, KernelVariant::Generic, cost);
    assert!(gen.scalar_fraction() > 0.5, "generic {:?}", gen.fractions());

    for v in [KernelVariant::LoG, KernelVariant::SplitCk] {
        let c = stp_pack_counts(&p, v, cost);
        let packed = 1.0 - c.scalar_fraction();
        assert!(packed > 0.8, "{v:?} packed {packed}");
        assert!(
            c.scalar_fraction() > 0.03 && c.scalar_fraction() < 0.2,
            "{v:?} scalar {}",
            c.scalar_fraction()
        );
    }

    let hybrid = stp_pack_counts(&p, KernelVariant::AoSoASplitCk, cost);
    assert!(
        hybrid.scalar_fraction() < 0.05,
        "AoSoA scalar {}",
        hybrid.scalar_fraction()
    );
}

/// Sec. V-A: on AVX-512, order 8 has no AoSoA padding overhead while
/// order 9 pads 9 → 16 (the "sweetspot" / "particularly large padding").
#[test]
fn claim_order8_sweetspot_order9_padding() {
    let p8 = plan(8, SimdWidth::W8);
    let p9 = plan(9, SimdWidth::W8);
    assert_eq!(p8.aosoa.n_pad(), 8);
    assert_eq!(p9.aosoa.n_pad(), 16);
}

/// The instruction-mix model under an AVX2 cap packs at 256 bits — the
/// basis of the paper's AVX2-vs-AVX-512 comparison (Fig. 4).
#[test]
fn claim_avx2_configuration_packs_256() {
    let p = plan(8, SimdWidth::W4);
    let c = stp_pack_counts(&p, KernelVariant::LoG, UserFunctionCost::elastic());
    let f = c.fractions();
    assert_eq!(f[3], 0.0);
    assert!(f[2] > 0.7, "{f:?}");
}

/// Useful flops are variant-independent; padded/executed flops are not.
/// The AoSoA variant at order 9 executes notably more (padding) flops
/// than at order 8 relative to the useful count.
#[test]
fn claim_padding_overhead_order9() {
    let cost = UserFunctionCost::elastic();
    let overhead = |n: usize| {
        let p = plan(n, SimdWidth::W8);
        let exec = stp_pack_counts(&p, KernelVariant::AoSoASplitCk, cost).total() as f64;
        let useful = stp_useful_flops(&p, cost) as f64;
        exec / useful
    };
    let o8 = overhead(8);
    let o9 = overhead(9);
    assert!(o9 > o8 * 1.3, "padding overhead o8={o8} o9={o9}");
}
