//! Regression tests for `Engine::run_until` across target magnitudes.
//!
//! The seed judged termination with an *absolute* epsilon
//! (`time < t_end - 1e-14`). For large `t_end` the subtraction is a no-op
//! in f64 (`1e3 - 1e-14 == 1e3`), so the loop chased sub-resolution
//! remainders with degenerate clipped steps. `run_until` now uses a
//! tolerance relative to `t_end` and clamps the last step; these tests pin
//! the step count and termination at `t_end` spanning six orders of
//! magnitude.

use aderdg::core::{Engine, EngineConfig};
use aderdg::mesh::StructuredMesh;
use aderdg::pde::AdvectionSystem;

/// A one-cell periodic advection engine with a tiny wave speed, so even
/// `t_end = 1e3` takes only a handful of CFL steps.
fn slow_engine() -> Engine<AdvectionSystem> {
    let mesh = StructuredMesh::unit_cube(1);
    let pde = AdvectionSystem::new(1, [1e-3, 0.0, 0.0]);
    let mut engine = Engine::new(mesh, pde, EngineConfig::new(2));
    engine.set_initial(|x, q| q[0] = (x[0] - 0.3) * (x[1] + 0.2));
    engine
}

#[test]
fn reaches_targets_across_magnitudes_with_expected_step_count() {
    for t_end in [1e-3, 1.0, 1e3] {
        let mut engine = slow_engine();
        let dt_max = engine.max_dt();
        assert!(dt_max.is_finite() && dt_max > 0.0);
        // CFL steps of dt_max, the last one clipped to the remainder.
        let expected_steps = (t_end / dt_max).ceil() as usize;
        engine.run_until(t_end);
        assert_eq!(
            engine.steps, expected_steps,
            "t_end={t_end}: wrong step count (stall or extra micro-steps)"
        );
        assert_eq!(
            engine.time, t_end,
            "t_end={t_end}: clock must land exactly on the target"
        );
    }
}

#[test]
fn sub_resolution_remainder_terminates_without_stepping() {
    // One ulp below a large target: the remainder is far inside the
    // relative tolerance, so the loop must exit immediately (the seed's
    // absolute epsilon underflowed here and kept stepping).
    let mut engine = slow_engine();
    let t_end: f64 = 1e3;
    engine.time = f64::from_bits(t_end.to_bits() - 1);
    engine.run_until(t_end);
    assert_eq!(engine.steps, 0, "no step should fire inside the tolerance");
    assert_eq!(engine.time, t_end);
}

#[test]
fn tolerance_scales_relatively_not_absolutely() {
    // 1e-10 below 1e3 is within the relative tolerance (1e-9) — done.
    let mut engine = slow_engine();
    engine.time = 1e3 - 1e-10;
    engine.run_until(1e3);
    assert_eq!(engine.steps, 0);
    assert_eq!(engine.time, 1e3);

    // The same 1e-10 gap below 1e-3 is *outside* the relative tolerance
    // (1e-15) and must still be stepped across.
    let mut engine = slow_engine();
    engine.time = 1e-3 - 1e-10;
    engine.run_until(1e-3);
    assert_eq!(engine.steps, 1, "a genuine remainder still gets a step");
    assert_eq!(engine.time, 1e-3);
}

#[test]
fn past_target_is_a_noop() {
    let mut engine = slow_engine();
    engine.time = 2.0;
    engine.run_until(1.0);
    assert_eq!(engine.steps, 0);
    assert_eq!(engine.time, 2.0, "the clock never runs backwards");
}
