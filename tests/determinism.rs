//! Thread-count determinism: `Engine::step` must be bit-identical under
//! `ADERDG_THREADS = 1`, `4` and `16` — on **both** pipelines.
//!
//! Barrier path: the cell loops in `aderdg::core::par` chunk statically
//! over worker threads; every cell's predictor and corrector arithmetic
//! is self-contained (the corrector *reads* neighbour face tensors but
//! only writes its own cell), and `max_dt`'s parallel reduction is a
//! pure `max`, which is associative and commutative over non-NaN values.
//!
//! Sharded path: the task *schedule* is thread-count dependent, but every
//! face flux is computed exactly once by one task from fixed predictor
//! outputs, and each cell applies its corrections in a fixed order — so
//! the execution order must never leak into results, not even in the
//! last ulp. These tests guard both the static chunking and the shard
//! scheduler against accumulation-order drift.

use aderdg::core::par::PoolMode;
use aderdg::core::{par, Engine, EngineConfig, PipelineMode};
use aderdg::mesh::StructuredMesh;
use aderdg::pde::{Acoustic, PointSource, SourceTimeFunction};
use std::sync::Mutex;

/// The thread-count override is process-global; serialize the tests that
/// flip it so they cannot interleave.
static THREAD_KNOB: Mutex<()> = Mutex::new(());

/// Runs a seeded acoustic problem with a point source at the given thread
/// count and returns the full evolved state, bit-exact.
fn run_with(threads: usize, config: EngineConfig) -> Vec<u64> {
    par::set_num_threads(threads);
    let mesh = StructuredMesh::unit_cube(3);
    let mut engine = Engine::new(mesh, Acoustic, config);
    // Smooth deterministic initial data (a function of position only, so
    // every thread count computes identical node values).
    engine.set_initial(|x, q| {
        let s = (x[0] * 12.9898 + x[1] * 78.233 + x[2] * 37.719).sin();
        q[0] = 0.1 * s;
        q[1] = 0.05 * (x[0] * 3.0).cos();
        q[2] = 0.0;
        q[3] = 0.02 * s * s;
        Acoustic::set_params(q, 1.0 + 0.2 * x[2], 1.0);
    });
    engine.add_point_source(PointSource {
        position: [0.4, 0.55, 0.6],
        amplitude: vec![1.0, 0.0, 0.0, 0.0],
        stf: SourceTimeFunction::Ricker {
            t0: 0.08,
            frequency: 6.0,
        },
    });
    let dt = engine.max_dt() * 0.5;
    assert!(dt.is_finite() && dt > 0.0);
    for _ in 0..3 {
        engine.step(dt);
    }
    (0..engine.mesh.num_cells())
        .flat_map(|c| engine.cell_state(c).iter().map(|v| v.to_bits()))
        .collect()
}

/// Asserts `config` produces bit-identical evolved states at 1, 4 and 16
/// worker threads.
fn assert_thread_invariant(config: EngineConfig, label: &str) {
    let reference = run_with(1, config);
    assert!(
        reference.iter().any(|&b| b != 0),
        "{label}: the run must actually evolve data"
    );
    for threads in [4, 16] {
        let result = run_with(threads, config);
        assert_eq!(
            result.len(),
            reference.len(),
            "{label}: state layout changed with thread count {threads}"
        );
        let diffs = result
            .iter()
            .zip(&reference)
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(
            diffs, 0,
            "{label}: {diffs} doubles differ between 1 and {threads} threads"
        );
    }
}

#[test]
fn step_results_bit_identical_across_thread_counts() {
    let _guard = THREAD_KNOB.lock().unwrap();
    let before = par::num_threads();
    assert_thread_invariant(
        EngineConfig::new(3).with_pipeline(PipelineMode::Barrier),
        "barrier",
    );
    par::set_num_threads(before);
}

#[test]
fn sharded_step_bit_identical_across_thread_counts() {
    let _guard = THREAD_KNOB.lock().unwrap();
    let before = par::num_threads();
    // Auto shard size plus explicit sizes that split the 27-cell mesh
    // into many shards (worst case for schedule-dependent ordering) and
    // one-shard / uneven-tail partitions.
    let base = EngineConfig::new(3).with_pipeline(PipelineMode::Sharded);
    assert_thread_invariant(base, "sharded(auto)");
    for shard_size in [2, 5, 27] {
        assert_thread_invariant(
            base.with_shard_size(shard_size),
            &format!("sharded({shard_size})"),
        );
    }
    par::set_num_threads(before);
}

#[test]
fn steal_heavy_sharded_step_bit_identical_across_pool_modes() {
    // Steal-heavy workload: shard sizes that leave uneven tails on the
    // 27-cell mesh (13+13+1 and 11+11+5) give some workers far more cells
    // than others, so the persistent pool's idle workers must steal to
    // finish — the schedule differs maximally between modes and thread
    // counts, yet the evolved state must not drift by a single bit.
    let _guard = THREAD_KNOB.lock().unwrap();
    let threads_before = par::num_threads();
    let mode_before = par::pool_mode();
    for shard_size in [13, 11] {
        let config = EngineConfig::new(3)
            .with_pipeline(PipelineMode::Sharded)
            .with_shard_size(shard_size);
        par::set_pool_mode(PoolMode::Scoped);
        let reference = run_with(1, config);
        assert!(
            reference.iter().any(|&b| b != 0),
            "steal-heavy: the run must actually evolve data"
        );
        for mode in [PoolMode::Persistent, PoolMode::Scoped] {
            par::set_pool_mode(mode);
            for threads in [1, 4, 16] {
                let result = run_with(threads, config);
                let diffs = result
                    .iter()
                    .zip(&reference)
                    .filter(|(a, b)| a != b)
                    .count();
                assert_eq!(
                    diffs, 0,
                    "steal-heavy shard_size={shard_size}: {diffs} doubles \
                     differ at {threads} threads ({mode:?}) vs scoped/1-thread"
                );
            }
        }
    }
    par::set_pool_mode(mode_before);
    par::set_num_threads(threads_before);
}

#[test]
fn max_dt_bit_identical_across_pool_modes() {
    // `max_dt` is the one parallel *reduction* in the step loop; the
    // persistent pool folds per-chunk partial maxima in chunk-index order
    // regardless of which worker computed them, so the result must match
    // the scoped path and every thread count exactly.
    let _guard = THREAD_KNOB.lock().unwrap();
    let threads_before = par::num_threads();
    let mode_before = par::pool_mode();
    let dt_at = |mode: PoolMode, threads: usize| {
        par::set_pool_mode(mode);
        par::set_num_threads(threads);
        let mesh = StructuredMesh::unit_cube(4);
        let mut engine = Engine::new(mesh, Acoustic, EngineConfig::new(2));
        engine.set_initial(|x, q| {
            q[0] = x[0];
            q[1] = 0.0;
            q[2] = 0.0;
            q[3] = 0.0;
            Acoustic::set_params(q, 1.0 + 0.5 * x[1], 1.0 + 0.25 * x[0]);
        });
        engine.max_dt().to_bits()
    };
    let reference = dt_at(PoolMode::Scoped, 1);
    for mode in [PoolMode::Persistent, PoolMode::Scoped] {
        for threads in [1, 4, 16] {
            assert_eq!(
                dt_at(mode, threads),
                reference,
                "max_dt drifted at {threads} threads ({mode:?})"
            );
        }
    }
    par::set_pool_mode(mode_before);
    par::set_num_threads(threads_before);
}

#[test]
fn max_dt_bit_identical_across_thread_counts() {
    let _guard = THREAD_KNOB.lock().unwrap();
    let before = par::num_threads();
    let dt_at = |threads: usize| {
        par::set_num_threads(threads);
        let mesh = StructuredMesh::unit_cube(4);
        let mut engine = Engine::new(mesh, Acoustic, EngineConfig::new(2));
        engine.set_initial(|x, q| {
            q[0] = x[0];
            q[1] = 0.0;
            q[2] = 0.0;
            q[3] = 0.0;
            Acoustic::set_params(q, 1.0 + 0.5 * x[1], 1.0 + 0.25 * x[0]);
        });
        engine.max_dt().to_bits()
    };
    let reference = dt_at(1);
    for threads in [4, 16] {
        assert_eq!(dt_at(threads), reference, "max_dt drifted at {threads}");
    }
    par::set_num_threads(before);
}
