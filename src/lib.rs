//! # aderdg — facade crate
//!
//! Re-exports the full workspace: tensor layouts, quadrature operators,
//! small-GEMM kernels, performance model, PDE definitions, mesh, and the
//! ADER-DG engine with its four Space-Time Predictor kernel variants
//! (reproduction of Gallard et al., IPDPS 2020).
//!
//! ## Example
//!
//! Propagate an acoustic plane wave with the paper's cache-aware SplitCK
//! predictor and check it against the exact solution:
//!
//! ```
//! use aderdg::core::{Engine, EngineConfig, KernelVariant};
//! use aderdg::mesh::StructuredMesh;
//! use aderdg::pde::{Acoustic, AcousticPlaneWave, ExactSolution};
//!
//! let wave = AcousticPlaneWave {
//!     direction: [1.0, 0.0, 0.0],
//!     amplitude: 1.0,
//!     wavenumber: 1.0,
//!     rho: 1.0,
//!     bulk: 1.0,
//! };
//! let mesh = StructuredMesh::unit_cube(2);
//! let cfg = EngineConfig::new(4).with_variant(KernelVariant::SplitCk);
//! let mut engine = Engine::new(mesh, Acoustic, cfg);
//! engine.set_initial(|x, q| {
//!     wave.evaluate(x, 0.0, q);
//!     Acoustic::set_params(q, 1.0, 1.0);
//! });
//! engine.run_until(0.05);
//! assert!(engine.l2_error(&wave) < 5e-2);
//! ```
//!
//! Or drive the engine from a specification file, as in the paper's
//! toolkit workflow:
//!
//! ```
//! use aderdg::core::{KernelRegistry, SolverSpec};
//!
//! let spec = SolverSpec::parse("order = 6\nkernel = aosoa_splitck\n").unwrap();
//! assert_eq!(spec.kernel.name(), "aosoa_splitck");
//! let _config = spec.engine_config();
//!
//! // The kernel set is open-ended: everything registered resolves.
//! for kernel in KernelRegistry::global().kernels() {
//!     assert!(KernelRegistry::global().resolve(kernel.name()).is_some());
//! }
//! ```
//!
//! Complete workloads (PDE + initial condition + boundaries + defaults)
//! live in the scenario registry and run by name — from Rust here, or
//! from the shell via `aderdg-run --scenario <name>` (see
//! `docs/SCENARIOS.md` for the gallery):
//!
//! ```
//! use aderdg::core::scenario::{RunRequest, ScenarioRegistry};
//!
//! let scenario = ScenarioRegistry::global().resolve("acoustic_wave").unwrap();
//! let summary = scenario.run(&RunRequest::smoke()).unwrap();
//! assert!(summary.l2_error.unwrap() < 0.1);
//! ```

#![warn(missing_docs)]

// The README's Rust snippets must keep compiling against the real API:
// rustdoc collects them as doc-tests through this hidden item, so
// `cargo test` fails the moment the quickstart drifts.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
pub struct ReadmeDoctests;

pub use aderdg_core as core;
pub use aderdg_gemm as gemm;
pub use aderdg_mesh as mesh;
pub use aderdg_pde as pde;
pub use aderdg_perf as perf;
pub use aderdg_quadrature as quadrature;
pub use aderdg_tensor as tensor;
