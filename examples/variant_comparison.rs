//! Compares every registered Space-Time Predictor kernel head-to-head on
//! the paper's 21-quantity elastic configuration: numerical agreement,
//! temporary-memory footprint, and single-core wall-clock time. A newly
//! registered kernel shows up here with zero edits.
//!
//! ```sh
//! cargo run --release --example variant_comparison [order]
//! ```

use aderdg::core::kernels::{StpInputs, StpOutputs};
use aderdg::core::{KernelRegistry, StpConfig, StpPlan};
use aderdg::pde::{Elastic, LinearPde, Material};
use aderdg::perf::footprint;
use std::time::Instant;

fn main() {
    let order: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    let m = 21;
    let plan = StpPlan::new(StpConfig::new(order, m), [0.1; 3]);
    let pde = Elastic;

    // A reproducible random elastic state with physical parameters.
    let m_pad = plan.aos.m_pad();
    let mut q0 = vec![0.0; plan.aos.len()];
    let mut rng = aderdg::tensor::Lcg::new(0x1234_5678_9ABC_DEF0);
    let mat = Material {
        rho: 2.7,
        cp: 6.0,
        cs: 3.46,
    };
    for k in 0..order * order * order {
        for s in 0..9 {
            q0[k * m_pad + s] = rng.unit();
        }
        let mut jac = Elastic::IDENTITY_JAC;
        jac[1] = 0.03 * ((k % 7) as f64 - 3.0);
        Elastic::set_params(&mut q0[k * m_pad..k * m_pad + m], mat, &jac);
    }
    let inputs = StpInputs {
        q0: &q0,
        dt: 1e-3,
        source: None,
    };

    println!(
        "STP variant comparison: order {order}, m = {m} (elastic), {} nodes/cell\n",
        order * order * order
    );
    println!(
        "{:>16} {:>14} {:>12} {:>14} {:>10}",
        "variant", "footprint", "time/cell", "max dev", "speedup"
    );
    println!(
        "{:>16} {:>14}",
        "(paper formula)",
        format!(
            "{:>.0} KiB gen / {:.0} KiB split",
            footprint::generic_temporaries_bytes(order, m) as f64 / 1024.0,
            footprint::splitck_temporaries_bytes(order, m) as f64 / 1024.0
        )
    );

    let mut reference: Option<StpOutputs> = None;
    let mut t_generic = 0.0f64;
    for kernel in KernelRegistry::global().kernels() {
        let mut scratch = kernel.make_scratch(&plan);
        let mut out = StpOutputs::new(&plan);
        // Warm up, then time a few repetitions.
        kernel.run(&plan, &pde, scratch.as_mut(), &inputs, &mut out);
        let reps = 10;
        let t0 = Instant::now();
        for _ in 0..reps {
            kernel.run(&plan, &pde, scratch.as_mut(), &inputs, &mut out);
        }
        let per_cell = t0.elapsed().as_secs_f64() / reps as f64;

        let max_dev = match &reference {
            None => 0.0,
            Some(r) => out
                .qavg
                .iter()
                .zip(r.qavg.iter())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max),
        };
        if reference.is_none() {
            reference = Some(out.clone());
            t_generic = per_cell;
        }
        println!(
            "{:>16} {:>12.1} K {:>10.1} µs {:>14.2e} {:>9.2}x",
            kernel.label(),
            scratch.footprint_bytes() as f64 / 1024.0,
            per_cell * 1e6,
            max_dev,
            t_generic / per_cell
        );
        assert!(
            max_dev < 1e-9,
            "kernel {} deviates from the reference by {max_dev}",
            kernel.name()
        );
    }
    println!("\nall registered kernels agree to floating-point tolerance");
    let _ = pde.num_vars();
}
