//! Compares every registered Space-Time Predictor kernel head-to-head on
//! the paper's 21-quantity elastic configuration by running the
//! registered `elastic_stress` scenario once per kernel: numerical
//! agreement (final L2 error vs the exact plane wave), single-run wall
//! clock and throughput. A newly registered kernel shows up here with
//! zero edits — the loop enumerates the [`KernelRegistry`], the setup
//! lives in the scenario registry.
//!
//! Note the timings are **whole engine steps** (predictor + Riemann +
//! corrector, the latter two identical across kernels), so the speedup
//! column understates the predictor-only separation of the paper; the
//! figure harnesses (`aderdg-bench` `fig4`/`fig6`/`fig10`/`speedups`)
//! time the predictor kernels in isolation.
//!
//! ```sh
//! cargo run --release --example variant_comparison [order]
//! ```

use aderdg::core::scenario::{RunRequest, ScenarioRegistry};
use aderdg::core::KernelRegistry;

fn main() {
    let order: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let scenario = ScenarioRegistry::global()
        .resolve("elastic_stress")
        .expect("elastic_stress is registered");

    println!(
        "STP variant comparison on `elastic_stress`: order {order}, m = 21 (elastic), 4^3 cells\n"
    );
    println!(
        "{:>16} {:>12} {:>14} {:>14} {:>10}",
        "variant", "steps", "cell upd/s", "L2 error", "speedup"
    );

    let mut reference: Option<(f64, f64)> = None; // (error, wall) of the first kernel
    for kernel in KernelRegistry::global().kernels() {
        let summary = scenario
            .run(&RunRequest {
                order: Some(order),
                kernel: Some(kernel.name().to_string()),
                cells: Some(4),
                ..RunRequest::new()
            })
            .expect("scenario runs");
        let err = summary
            .l2_error
            .expect("elastic_stress has an exact solution");
        let (ref_err, ref_wall) = *reference.get_or_insert((err, summary.wall_seconds));
        println!(
            "{:>16} {:>12} {:>14.0} {:>14.4e} {:>9.2}x",
            kernel.label(),
            summary.steps,
            summary.cell_updates_per_second,
            err,
            ref_wall / summary.wall_seconds
        );
        // All variants compute the same scheme: their error against the
        // exact solution must agree to floating-point tolerance.
        let dev = (err - ref_err).abs() / ref_err.max(1e-300);
        assert!(
            dev < 1e-9,
            "kernel {} deviates from the reference error by {dev:.2e}",
            kernel.name()
        );
    }
    println!("\nall registered kernels agree to floating-point tolerance");
}
