//! Electromagnetic wave propagation driven by a specification file —
//! demonstrates the opt-in kernel selection of the paper (Sec. II-C: users
//! choose variants in the specification file; optimized kernels are
//! opt-in) on a second physics domain.
//!
//! ```sh
//! cargo run --release --example maxwell_cavity
//! ```

use aderdg::core::{Engine, SolverSpec};
use aderdg::mesh::StructuredMesh;
use aderdg::pde::{ExactSolution, Maxwell, MaxwellPlaneWave};

const SPEC: &str = "
# Maxwell benchmark — Sec. V kernel, order 5
order  = 5
kernel = aosoa_splitck
width  = host
rule   = gauss_legendre
cfl    = 0.4
";

fn main() {
    let spec = SolverSpec::parse(SPEC).expect("valid specification");
    println!(
        "specification: order {}, kernel {}, cfl {}",
        spec.order,
        spec.kernel.label(),
        spec.cfl
    );

    // A circularly-ish polarized pair of plane waves in vacuum-like medium.
    let wave = MaxwellPlaneWave {
        direction: [0.0, 0.0, 1.0],
        polarization: [1.0, 0.0, 0.0],
        amplitude: 1.0,
        wavenumber: 1.0,
        epsilon: 1.0,
        mu: 1.0,
    };

    let mesh = StructuredMesh::unit_cube(3);
    let mut engine = Engine::new(mesh, Maxwell, spec.engine_config());
    engine.set_initial(|x, q| {
        wave.evaluate(x, 0.0, q);
        Maxwell::set_params(q, wave.epsilon, wave.mu);
    });

    println!("\n{:>8} {:>12} {:>12}", "t", "L2 error", "energy");
    let e0 = engine.l2_norm();
    for checkpoint in [0.25, 0.5, 1.0] {
        engine.run_until(checkpoint);
        println!(
            "{:>8.2} {:>12.3e} {:>12.6}",
            engine.time,
            engine.l2_error(&wave),
            engine.l2_norm()
        );
    }
    let e1 = engine.l2_norm();
    assert!(e1 <= e0 * 1.001, "energy must not grow ({e0} -> {e1})");
    let err = engine.l2_error(&wave);
    assert!(err < 5e-3, "unexpectedly large error {err}");
    println!("\nfull period propagated, energy non-increasing — Maxwell OK");
}
