//! Electromagnetic wave propagation driven by a specification file —
//! demonstrates the opt-in kernel selection of the paper (Sec. II-C:
//! users choose variants in the specification file; optimized kernels
//! are opt-in) feeding the registered `maxwell_cavity` scenario: every
//! `SolverSpec` knob flows into the run via `RunRequest::with_spec`.
//!
//! ```sh
//! cargo run --release --example maxwell_cavity
//! ```

use aderdg::core::scenario::{RunRequest, ScenarioRegistry};
use aderdg::core::SolverSpec;

const SPEC: &str = "
# Maxwell benchmark — Sec. V kernel, order 5
order  = 5
kernel = aosoa_splitck
width  = host
rule   = gauss_legendre
cfl    = 0.4
";

fn main() {
    let spec = SolverSpec::parse(SPEC).expect("valid specification");
    println!(
        "specification: order {}, kernel {}, cfl {}",
        spec.order,
        spec.kernel.label(),
        spec.cfl
    );

    let scenario = ScenarioRegistry::global()
        .resolve("maxwell_cavity")
        .expect("maxwell_cavity is registered");
    let summary = scenario
        .run(&RunRequest::new().with_spec(&spec))
        .expect("scenario runs");

    println!("\n{:>8} {:>12} {:>12}", "t", "L2 error", "energy");
    for p in summary.series.iter().skip(1) {
        println!(
            "{:>8.2} {:>12.3e} {:>12.6}",
            p.t,
            p.l2_error.expect("maxwell_cavity has an exact solution"),
            p.l2_norm
        );
    }

    let e0 = summary.series.first().expect("series has t = 0").l2_norm;
    let e1 = summary.l2_norm;
    assert!(e1 <= e0 * 1.001, "energy must not grow ({e0} -> {e1})");
    let err = summary.l2_error.expect("exact solution available");
    assert!(err < 5e-3, "unexpectedly large error {err}");
    println!("\nfull period propagated, energy non-increasing — Maxwell OK");
}
