//! Quickstart: run the registered `acoustic_wave` scenario — an acoustic
//! plane wave checked against the exact solution — through the scenario
//! registry, exactly as `aderdg-run --scenario acoustic_wave` does.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use aderdg::core::scenario::{RunRequest, ScenarioRegistry};

fn main() {
    let scenario = ScenarioRegistry::global()
        .resolve("acoustic_wave")
        .expect("acoustic_wave is registered");
    let info = scenario.info();
    println!(
        "{}: order {}, {}³ cells, kernel {}",
        info.title, info.order, info.cells[0], info.kernel
    );

    let summary = scenario.run(&RunRequest::new()).expect("scenario runs");

    println!("{:>8} {:>12} {:>10}", "t", "L2 error", "steps");
    for p in &summary.series {
        println!(
            "{:>8.2} {:>12.3e} {:>10}",
            p.t,
            p.l2_error.expect("acoustic_wave has an exact solution"),
            p.steps
        );
    }

    let err = summary.l2_error.expect("exact solution available");
    assert!(err < 5e-3, "unexpectedly large error {err}");
    println!("\nquickstart OK (final L2 error {err:.3e})");
}
