//! Quickstart: propagate an acoustic plane wave with the linear ADER-DG
//! engine and verify it against the exact solution.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use aderdg::core::{Engine, EngineConfig, KernelVariant};
use aderdg::mesh::StructuredMesh;
use aderdg::pde::{Acoustic, AcousticPlaneWave, ExactSolution};

fn main() {
    // A right-going plane wave in a homogeneous medium (c = 1).
    let wave = AcousticPlaneWave {
        direction: [1.0, 0.0, 0.0],
        amplitude: 1.0,
        wavenumber: 1.0,
        rho: 1.0,
        bulk: 1.0,
    };

    // 3³ cells of a periodic unit cube, order-5 ADER-DG, the paper's
    // cache-aware SplitCK predictor.
    let mesh = StructuredMesh::unit_cube(3);
    let config = EngineConfig::new(5).with_variant(KernelVariant::SplitCk);
    let mut engine = Engine::new(mesh, Acoustic, config);

    // Initial condition = exact solution at t = 0, plus material params.
    engine.set_initial(|x, q| {
        wave.evaluate(x, 0.0, q);
        Acoustic::set_params(q, wave.rho, wave.bulk);
    });

    println!("order 5, 27 cells, SplitCK predictor");
    println!("{:>8} {:>12} {:>10}", "t", "L2 error", "steps");
    for checkpoint in [0.1, 0.2, 0.4] {
        engine.run_until(checkpoint);
        println!(
            "{:>8.2} {:>12.3e} {:>10}",
            engine.time,
            engine.l2_error(&wave),
            engine.steps
        );
    }

    // Probe the solution at a point and compare with the exact value.
    let x = [0.31, 0.62, 0.5];
    let got = engine.sample(x);
    let mut want = vec![0.0; 4];
    wave.evaluate(x, engine.time, &mut want);
    println!(
        "\nsample at {x:?}: p = {:.6} (exact {:.6})",
        got[0], want[0]
    );

    let err = engine.l2_error(&wave);
    assert!(err < 5e-3, "unexpectedly large error {err}");
    println!("\nquickstart OK (final L2 error {err:.3e})");
}
