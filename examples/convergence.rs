//! Convergence study: the ADER-DG scheme attains its design order.
//!
//! Runs the registered `advection_wave` scenario (multi-component linear
//! advection, exact solution) on successively refined periodic meshes at
//! several polynomial orders — the order/mesh sweep is just a pair of
//! [`RunRequest`] overrides, the setup itself lives in the scenario
//! registry.
//!
//! ```sh
//! cargo run --release --example convergence
//! ```

use aderdg::core::scenario::{RunRequest, ScenarioRegistry};

fn error(order: usize, cells: usize) -> f64 {
    let scenario = ScenarioRegistry::global()
        .resolve("advection_wave")
        .expect("advection_wave is registered");
    let summary = scenario
        .run(&RunRequest {
            order: Some(order),
            cells: Some(cells),
            ..RunRequest::new()
        })
        .expect("scenario runs");
    summary
        .l2_error
        .expect("advection_wave has an exact solution")
}

fn main() {
    println!("L2 errors and observed convergence rates (advected sine, t = 0.1)");
    println!(
        "{:>6} {:>6} {:>12} {:>12} {:>12} {:>8}",
        "order", "", "2^3 cells", "4^3 cells", "8^3 cells", "rate"
    );
    for order in [2, 3, 4, 5] {
        // Low orders need finer meshes to reach the asymptotic regime;
        // high orders hit round-off there — measure the rate on the
        // appropriate refinement step.
        let e2 = error(order, 2);
        let e4 = error(order, 4);
        let (e8, rate) = if order <= 3 {
            let e8 = error(order, 8);
            (e8, (e4 / e8).log2())
        } else {
            (f64::NAN, (e2 / e4).log2())
        };
        println!(
            "{:>6} {:>6} {:>12.3e} {:>12.3e} {:>12.3e} {:>8.2}",
            order, "", e2, e4, e8, rate
        );
        assert!(
            rate > order as f64 - 0.8,
            "order {order}: observed rate {rate} below design order"
        );
    }
    println!("\nall orders converge at (or above) their design rate");
}
