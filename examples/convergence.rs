//! Convergence study: the ADER-DG scheme attains its design order.
//!
//! Runs multi-component linear advection on successively refined periodic
//! meshes at several polynomial orders and prints the observed L2
//! convergence rates (expected: rate ≈ order).
//!
//! ```sh
//! cargo run --release --example convergence
//! ```

use aderdg::core::{Engine, EngineConfig, KernelVariant};
use aderdg::mesh::StructuredMesh;
use aderdg::pde::{AdvectedSine, AdvectionSystem, ExactSolution};

fn error(order: usize, cells: usize, variant: KernelVariant) -> f64 {
    let velocity = [0.7, 0.4, 0.2];
    let pde = AdvectionSystem::new(3, velocity);
    let exact = AdvectedSine {
        n_vars: 3,
        velocity,
        wave: [1.0, 0.0, 0.0],
    };
    let mesh = StructuredMesh::unit_cube(cells);
    let mut engine = Engine::new(mesh, pde, EngineConfig::new(order).with_variant(variant));
    engine.set_initial(|x, q| exact.evaluate(x, 0.0, q));
    engine.run_until(0.1);
    engine.l2_error(&exact)
}

fn main() {
    println!("L2 errors and observed convergence rates (advected sine, t = 0.1)");
    println!(
        "{:>6} {:>6} {:>12} {:>12} {:>12} {:>8}",
        "order", "", "2^3 cells", "4^3 cells", "8^3 cells", "rate"
    );
    for order in [2, 3, 4, 5] {
        // Low orders need finer meshes to reach the asymptotic regime;
        // high orders hit round-off there — measure the rate on the
        // appropriate refinement step.
        let e2 = error(order, 2, KernelVariant::SplitCk);
        let e4 = error(order, 4, KernelVariant::SplitCk);
        let (e8, rate) = if order <= 3 {
            let e8 = error(order, 8, KernelVariant::SplitCk);
            (e8, (e4 / e8).log2())
        } else {
            (f64::NAN, (e2 / e4).log2())
        };
        println!(
            "{:>6} {:>6} {:>12.3e} {:>12.3e} {:>12.3e} {:>8.2}",
            order, "", e2, e4, e8, rate
        );
        assert!(
            rate > order as f64 - 0.8,
            "order {order}: observed rate {rate} below design order"
        );
    }
    println!("\nall orders converge at (or above) their design rate");
}
