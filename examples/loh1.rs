//! LOH1-style layered-medium benchmark (paper Sec. VI), run through the
//! scenario registry.
//!
//! Layer Over Halfspace: a low-velocity elastic layer over a stiffer
//! half-space on an interface-fitted curvilinear mesh, a buried
//! moment-rate point source with a Ricker wavelet, a free surface on top
//! and surface receivers recording seismograms — the workload the
//! paper's evaluation is built on, with the full `m = 21` stored
//! quantities. The entire setup lives in the registered `loh1` scenario
//! (`crates/core/src/scenarios/elastic.rs`); this example only
//! post-processes the seismograms.
//!
//! ```sh
//! cargo run --release --example loh1
//! ```

use aderdg::core::scenario::{RunRequest, ScenarioRegistry};
use aderdg::core::scenarios::LOH1_OFFSETS;
use aderdg::pde::elastic;

fn main() {
    let scenario = ScenarioRegistry::global()
        .resolve("loh1")
        .expect("loh1 is registered");
    println!("LOH1-style run: m = 21 quantities, AoSoA SplitCK, order 4");
    let summary = scenario.run(&RunRequest::new()).expect("scenario runs");
    println!(
        "simulated t = {:.2} in {} steps\n",
        summary.t_end, summary.steps
    );

    println!(
        "{:>8} {:>12} {:>14} {:>12}",
        "offset", "peak |v|", "first arrival", "peak |vz|"
    );
    for (&dx, rec) in LOH1_OFFSETS.iter().zip(&summary.receivers) {
        let vmag = |v: &Vec<f64>| {
            (v[elastic::VX].powi(2) + v[elastic::VY].powi(2) + v[elastic::VZ].powi(2)).sqrt()
        };
        let peak: f64 = rec.records.iter().map(|(_, v)| vmag(v)).fold(0.0, f64::max);
        let peak_vz: f64 = rec
            .records
            .iter()
            .map(|(_, v)| v[elastic::VZ].abs())
            .fold(0.0, f64::max);
        // First arrival: first crossing of 10 % of the trace's own peak —
        // robust against radiation-pattern differences between offsets.
        let arrival = rec
            .records
            .iter()
            .find(|(_, v)| vmag(v) > 0.1 * peak)
            .map(|(t, _)| *t)
            .unwrap_or(f64::NAN);
        println!("{dx:>8.2} {peak:>12.4e} {arrival:>14.3} {peak_vz:>12.4e}");
        // Sanity: every receiver records a bounded, non-trivial signal
        // (stability + radiation), and nothing arrives instantaneously
        // (the source cell is away from all receivers). At this coarse
        // resolution the exact move-out is polluted by interface and
        // free-surface reflections, so we do not assert monotonicity.
        assert!(
            peak > 1e-5 && peak < 1.0,
            "receiver at offset {dx}: implausible peak {peak}"
        );
        assert!(
            arrival > 0.2,
            "offset {dx}: signal arrived implausibly early ({arrival})"
        );
    }
    println!("\nall receivers recorded bounded, causally delayed signals — LOH1 OK");
}
