//! LOH1-style layered-medium benchmark (paper Sec. VI).
//!
//! Layer Over Halfspace: a low-velocity elastic layer over a stiffer
//! half-space, a buried moment-rate point source with a Ricker wavelet,
//! free surface on top, and surface receivers recording seismograms —
//! the workload the paper's evaluation is built on, with the full
//! `m = 21` stored quantities (9 evolved + 3 material + 9 metric).
//!
//! The mesh is fitted to the material interface with a curvilinear
//! vertical stretch; its inverse-Jacobian rows are stored per node and
//! enter the elastic flux as metric coefficients.
//!
//! ```sh
//! cargo run --release --example loh1
//! ```

use aderdg::core::{Engine, EngineConfig, KernelVariant};
use aderdg::mesh::{BoundaryKind, CurvilinearMap, InterfaceFittedMap, StructuredMesh};
use aderdg::pde::{elastic, Elastic, Material, PointSource, SourceTimeFunction};

fn main() {
    // Domain: a (scaled) box; z = 1 is the free surface. The material
    // interface at depth z = 0.7 is fitted by the curvilinear map from the
    // mesh plane z = 0.75 (cell boundary of a 4-cell column).
    let mesh = StructuredMesh::new(
        [4, 4, 4],
        [0.0; 3],
        [1.0; 3],
        [
            BoundaryKind::Outflow,
            BoundaryKind::Outflow,
            BoundaryKind::Reflective, // free surface (elastic ghost)
        ],
    );
    let map = InterfaceFittedMap {
        plane_z: 0.75,
        interface_z: 0.7,
        bump: 0.02,
    };

    // LOH1 materials (scaled units): soft layer over stiff half-space.
    let layer = Material {
        rho: 1.0,
        cp: 1.0,
        cs: 0.58,
    };
    let halfspace = Material {
        rho: 1.3,
        cp: 1.6,
        cs: 0.92,
    };

    let config = EngineConfig::new(4).with_variant(KernelVariant::AoSoASplitCk);
    let mut engine = Engine::new(mesh.clone(), Elastic, config);

    // Quiescent medium. The material is constant per cell (the map fits
    // the interface to a cell boundary, so no cell straddles it); the
    // metric varies smoothly per node.
    engine.set_initial(|x, q| {
        q.fill(0.0);
        let cell_center = mesh.cell_center(mesh.locate(x));
        let mat = if map.map(cell_center)[2] > 0.7 {
            layer
        } else {
            halfspace
        };
        let metric = map.metric(x);
        Elastic::set_params(q, mat, &metric);
    });

    // Buried double-couple-like source: moment rate on σxy below the
    // interface, Ricker wavelet.
    let mut amplitude = vec![0.0; elastic::VARS];
    amplitude[elastic::SXY] = 1.0;
    // Dominant frequency resolved by the mesh (≥ ~4 cells/wavelength in
    // the slow layer) so arrival times are physical.
    engine.add_point_source(PointSource {
        position: [0.5, 0.5, 0.55],
        amplitude,
        stf: SourceTimeFunction::Ricker {
            t0: 0.6,
            frequency: 1.8,
        },
    });

    // Surface receivers at increasing offset from the epicentre, along the
    // 45° azimuth (maximum P radiation of an σxy double-couple; the
    // coordinate axes are its nodal planes).
    let offsets = [0.1, 0.2, 0.35];
    let ids: Vec<usize> = offsets
        .iter()
        .map(|&dx| {
            let h = dx / std::f64::consts::SQRT_2;
            engine.add_receiver([0.5 + h, 0.5 + h, 0.97])
        })
        .collect();

    println!("LOH1-style run: m = 21 quantities, AoSoA SplitCK, order 4");
    engine.run_until(2.2);
    println!(
        "simulated t = {:.2} in {} steps\n",
        engine.time, engine.steps
    );

    println!(
        "{:>8} {:>12} {:>14} {:>12}",
        "offset", "peak |v|", "first arrival", "peak |vz|"
    );
    for (&dx, &id) in offsets.iter().zip(&ids) {
        let rec = &engine.receivers[id];
        let vmag = |v: &Vec<f64>| {
            (v[elastic::VX].powi(2) + v[elastic::VY].powi(2) + v[elastic::VZ].powi(2)).sqrt()
        };
        let peak: f64 = rec.records.iter().map(|(_, v)| vmag(v)).fold(0.0, f64::max);
        let peak_vz: f64 = rec
            .records
            .iter()
            .map(|(_, v)| v[elastic::VZ].abs())
            .fold(0.0, f64::max);
        // First arrival: first crossing of 10 % of the trace's own peak —
        // robust against radiation-pattern differences between offsets.
        let arrival = rec
            .records
            .iter()
            .find(|(_, v)| vmag(v) > 0.1 * peak)
            .map(|(t, _)| *t)
            .unwrap_or(f64::NAN);
        println!("{dx:>8.2} {peak:>12.4e} {arrival:>14.3} {peak_vz:>12.4e}");
        // Sanity: every receiver records a bounded, non-trivial signal
        // (stability + radiation), and nothing arrives instantaneously
        // (the source cell is away from all receivers). At this coarse
        // resolution the exact move-out is polluted by interface and
        // free-surface reflections, so we do not assert monotonicity.
        assert!(
            peak > 1e-5 && peak < 1.0,
            "receiver at offset {dx}: implausible peak {peak}"
        );
        assert!(
            arrival > 0.2,
            "offset {dx}: signal arrived implausibly early ({arrival})"
        );
    }
    println!("\nall receivers recorded bounded, causally delayed signals — LOH1 OK");
}
